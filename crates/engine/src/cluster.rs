//! The [`SecCluster`]: a sharded router over many [`SecEngine`]s.
//!
//! The paper's availability analysis (§IV) is about *fleets* of coded
//! archives: many independent objects, each archived under the same `(n, k)`
//! SEC code, spread over groups of storage nodes that fail independently.
//! `SecCluster` is that fleet as a serving system — it hashes [`ObjectId`]s
//! across `S` shards, and each shard hosts the per-object version archives
//! of the objects routed to it:
//!
//! * **one codec per process** — every per-object engine shares one
//!   `Arc<SecCode>` / `Arc<CoeffTables>`, so the `GF(2^8)` multiplication
//!   tables are materialized once, not once per object;
//! * **one liveness array per shard** — a shard models a physical group of
//!   `n` nodes, so failing `(shard, node)` is a single atomic store observed
//!   by the read planner of every object on that shard;
//! * **per-object version sequences** — each object id owns an independent
//!   [`SecEngine`] (archive, storage nodes, metrics, optional cache), so
//!   appends and retrievals of objects on different shards share no lock at
//!   all, and objects on the same shard only share the shard's object map
//!   (taken shared on every lookup, exclusively only to admit a new object);
//! * **fallible addressing** — a bad shard index or node id is a
//!   [`ClusterError`], never a panic inside the serving process.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::ordered::{LockRank, OrderedRwLock};

use sec_store::fault;
use sec_store::{FailurePattern, IoMetrics, PlacementStrategy, StoreError};
use sec_versioning::object::VersionId;
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, CacheStats, DeltaCache};

use crate::engine::{EngineMetrics, EnginePrefix, EngineRetrieval, NodeLiveness, SecEngine};
use sec_erasure::ByteCodec;

/// Identifier of one versioned object in a cluster.
///
/// Routing hashes the raw id, so ids may be dense (`0, 1, 2, …`) or sparse
/// (pre-hashed names via [`ObjectId::from_name`]) without skewing shard
/// placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Derives an id from a name (FNV-1a, 64-bit) — stable across runs and
    /// platforms, so routing is reproducible.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(hash)
    }
}

impl From<u64> for ObjectId {
    fn from(id: u64) -> Self {
        Self(id)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object-{:016x}", self.0)
    }
}

/// Errors from cluster-level routing and addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster must have at least one shard.
    NoShards,
    /// A shard index outside `0..shard_count` was addressed.
    InvalidShard {
        /// The offending shard index.
        shard: usize,
        /// Number of shards the cluster actually has.
        shards: usize,
    },
    /// A retrieval named an object no version was ever appended for.
    UnknownObject {
        /// The unrouted object id.
        object: ObjectId,
    },
    /// An error from the addressed shard's engine (including
    /// [`StoreError::InvalidNode`] for an out-of-range node id).
    Engine(StoreError),
    /// An operation that only makes sense under one placement strategy was
    /// invoked on a cluster built with the other (shard-scoped node
    /// addressing needs colocated placement's shared node groups;
    /// object-scoped repair needs dispersed placement's private node sets).
    PlacementMismatch {
        /// The placement the cluster was built with.
        placement: PlacementStrategy,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoShards => write!(f, "a cluster needs at least one shard"),
            ClusterError::InvalidShard { shard, shards } => {
                write!(f, "shard {shard} is out of range for a {shards}-shard cluster")
            }
            ClusterError::UnknownObject { object } => {
                write!(f, "{object} holds no versions in this cluster")
            }
            ClusterError::Engine(e) => write!(f, "engine error: {e}"),
            ClusterError::PlacementMismatch { placement } => {
                write!(f, "operation is not addressable under {placement} placement")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ClusterError {
    fn from(e: StoreError) -> Self {
        ClusterError::Engine(e)
    }
}

/// Point-in-time counters of one shard, aggregated over the objects it
/// hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Aggregate I/O counters summed across the shard's objects.
    pub io: IoMetrics,
    /// Reads served per codeword position: under colocated placement entry
    /// `i` is the shard's physical node `i` (summed across the per-object
    /// block stores colocated on it); under dispersed placement the
    /// per-object node spaces are folded by position (`id mod n`), giving
    /// the read load of each codeword slot across the shard's objects.
    pub node_reads: Vec<u64>,
    /// Number of currently live nodes on the shard (shared group of `n` for
    /// colocated; summed over the per-object node spaces for dispersed).
    pub live_nodes: usize,
    /// Total storage nodes the shard's placement addresses: `n` under
    /// colocated placement, the sum of per-object `n · entries` node spaces
    /// under dispersed.
    pub nodes: usize,
    /// Number of objects routed to the shard so far.
    pub objects: usize,
    /// Total versions appended across the shard's objects.
    pub versions: usize,
    /// Delta-cache statistics summed across the shard's objects
    /// (`capacity` sums the per-object capacities).
    pub cache: CacheStats,
    /// Stored entries XOR-applied on top of cached bases, summed across the
    /// shard's objects.
    pub deltas_applied: u64,
    /// Checkpoint full versions forced by the archive policy, summed across
    /// the shard's objects.
    pub checkpoints_written: u64,
}

/// A point-in-time view of everything the cluster counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// The placement strategy every object is stored under.
    pub placement: PlacementStrategy,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardMetrics>,
    /// Cluster-wide I/O totals.
    pub io: IoMetrics,
    /// Cluster-wide cache totals.
    pub cache: CacheStats,
    /// Total storage nodes across all shards (per-placement semantics as
    /// [`ShardMetrics::nodes`]).
    pub nodes: usize,
    /// Total live storage nodes across all shards.
    pub live_nodes: usize,
    /// Total objects across all shards.
    pub objects: usize,
    /// Total versions across all objects.
    pub versions: usize,
    /// Cluster-wide total of stored entries XOR-applied on cached bases.
    pub deltas_applied: u64,
    /// Cluster-wide total of policy-forced checkpoint full versions.
    pub checkpoints_written: u64,
}

/// One shard: the engines of the objects routed here, plus — under
/// colocated placement — the shared liveness of the shard's physical group
/// of `n` nodes. Dispersed shards have no shared node group (every object
/// owns its node space), so their `liveness` is `None`.
#[derive(Debug)]
struct ClusterShard {
    liveness: Option<Arc<NodeLiveness>>,
    objects: OrderedRwLock<BTreeMap<ObjectId, Arc<SecEngine>>>,
}

/// A sharded multi-archive router: many versioned objects served by `S`
/// independent groups of storage nodes under one SEC code.
///
/// # Routing
///
/// An object id is hashed (SplitMix64 finalizer — deterministic across runs)
/// onto a shard; the object's whole version sequence lives on that shard's
/// `n` nodes. Different objects on different shards share *nothing* but the
/// process-wide codec tables, which are immutable — so cross-shard traffic
/// never contends.
///
/// # Failure domains
///
/// Under **colocated** placement (the default) `(shard, node)` addresses one
/// simulated physical node: failing it makes block position `node` of
/// **every** object on that shard unreadable (one atomic store), and
/// [`SecCluster::repair_node`] rebuilds that position for every object
/// before reviving the node — staged per object, so a repair that fails
/// midway leaves each object exactly as recoverable as before.
///
/// Under **dispersed** placement every stored entry of every object owns a
/// private set of `n` nodes, so there is no shard-wide node to address:
/// failure injection and repair go through the object-scoped API
/// ([`SecCluster::fail_object_node`], [`SecCluster::repair_object_node`]),
/// and a node failure degrades exactly one entry of exactly one object.
#[derive(Debug)]
pub struct SecCluster {
    config: ArchiveConfig,
    codec: ByteCodec,
    cache_capacity: usize,
    placement: PlacementStrategy,
    shards: Vec<ClusterShard>,
}

impl SecCluster {
    /// Creates a cluster of `shards` empty shards with delta caches
    /// disabled (the mode whose read accounting is bit-compatible with the
    /// single-archive references).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoShards`] for zero shards, or the
    /// engine/versioning error when the configured code cannot be built over
    /// `GF(2^8)`.
    pub fn new(config: ArchiveConfig, shards: usize) -> Result<Self, ClusterError> {
        Self::with_cache(config, shards, 0)
    }

    /// Like [`SecCluster::new`], giving every object's engine a delta
    /// cache of `cache_capacity` decoded versions (0 disables caching).
    ///
    /// # Errors
    ///
    /// As for [`SecCluster::new`].
    pub fn with_cache(
        config: ArchiveConfig,
        shards: usize,
        cache_capacity: usize,
    ) -> Result<Self, ClusterError> {
        Self::with_placement(config, shards, cache_capacity, PlacementStrategy::Colocated)
    }

    /// Like [`SecCluster::with_cache`] under an explicit placement strategy
    /// (§IV of the paper). Colocated keeps one shared liveness array of `n`
    /// nodes per shard; dispersed gives every object's every stored entry a
    /// private set of `n` nodes, addressed through the object-scoped node
    /// API.
    ///
    /// # Errors
    ///
    /// As for [`SecCluster::new`].
    pub fn with_placement(
        config: ArchiveConfig,
        shards: usize,
        cache_capacity: usize,
        placement: PlacementStrategy,
    ) -> Result<Self, ClusterError> {
        if shards == 0 {
            return Err(ClusterError::NoShards);
        }
        // Build the one codec every per-object archive will share; routing a
        // new object then costs no table materialization at all.
        let codec = ByteVersionedArchive::new(config)
            .map_err(StoreError::from)?
            .codec()
            .clone();
        let n = config.params().n;
        Ok(Self {
            config,
            codec,
            cache_capacity,
            placement,
            shards: (0..shards)
                .map(|_| ClusterShard {
                    liveness: match placement {
                        PlacementStrategy::Colocated => Some(Arc::new(NodeLiveness::new(n))),
                        PlacementStrategy::Dispersed => None,
                    },
                    objects: OrderedRwLock::new(LockRank::ObjectMap, BTreeMap::new()),
                })
                .collect(),
        })
    }

    /// The archive configuration every object is encoded under.
    pub fn config(&self) -> ArchiveConfig {
        self.config
    }

    /// The placement strategy every object is stored under.
    pub fn placement(&self) -> PlacementStrategy {
        self.placement
    }

    /// The process-wide shared codec (one `Arc<SecCode>`/`Arc<CoeffTables>`
    /// for the whole cluster).
    pub fn codec(&self) -> &ByteCodec {
        &self.codec
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Codeword length `n`: the size of each shard's shared node group
    /// under colocated placement, and of each stored entry's private node
    /// set under dispersed (see [`SecCluster::object_node_count`] for an
    /// object's total).
    pub fn node_count(&self) -> usize {
        self.config.params().n
    }

    /// Total number of objects routed so far.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.read().len()).sum()
    }

    /// Whether any version was appended for `id`.
    pub fn contains_object(&self, id: ObjectId) -> bool {
        // audit: panic ok — shard_of maps every id into 0..shards.len() by modulo
        self.shards[self.shard_of(id)].objects.read().contains_key(&id)
    }

    /// Number of versions appended for `id`, or `None` for an unknown
    /// object.
    pub fn version_count(&self, id: ObjectId) -> Option<usize> {
        self.engine_of(id).ok().map(|e| e.len())
    }

    /// The shard `id` routes to. Deterministic across runs and processes.
    pub fn shard_of(&self, id: ObjectId) -> usize {
        // SplitMix64 finalizer: a full-avalanche bijection, so dense ids
        // (0, 1, 2, …) spread as evenly as pre-hashed ones.
        let mut z = id.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    fn shard(&self, shard: usize) -> Result<&ClusterShard, ClusterError> {
        self.shards.get(shard).ok_or(ClusterError::InvalidShard {
            shard,
            shards: self.shards.len(),
        })
    }

    /// The shard's shared node group, for the shard-scoped node API. Only
    /// colocated placement has one; under dispersed every object owns its
    /// node space, so shard-scoped node addressing is a
    /// [`ClusterError::PlacementMismatch`].
    fn shard_group(&self, shard: usize) -> Result<(&ClusterShard, &Arc<NodeLiveness>), ClusterError> {
        let s = self.shard(shard)?;
        match &s.liveness {
            Some(liveness) => Ok((s, liveness)),
            None => Err(ClusterError::PlacementMismatch {
                placement: self.placement,
            }),
        }
    }

    fn check_node(&self, liveness: &NodeLiveness, node: usize) -> Result<(), ClusterError> {
        if node >= liveness.len() {
            return Err(ClusterError::Engine(StoreError::InvalidNode {
                node,
                n: liveness.len(),
            }));
        }
        Ok(())
    }

    /// The engine serving `id`, or [`ClusterError::UnknownObject`].
    fn engine_of(&self, id: ObjectId) -> Result<Arc<SecEngine>, ClusterError> {
        // audit: panic ok — shard_of maps every id into 0..shards.len() by modulo
        self.shards[self.shard_of(id)]
            .objects
            .read()
            .get(&id)
            .cloned()
            .ok_or(ClusterError::UnknownObject { object: id })
    }

    /// Runs an append against `id`'s engine, creating the engine (on its
    /// routed shard, sharing the shard's liveness and the cluster codec) on
    /// first append.
    ///
    /// The encode work always runs *outside* the shard's object-map lock —
    /// a first append of a large history must not stall retrievals of
    /// co-hosted objects. A first appender encodes into a private engine and
    /// then admits it under the write lock (a map insert, nothing more); if
    /// another appender won the race in the meantime, the private engine is
    /// discarded and the append is replayed against the winner's, so no
    /// admitted version can be lost to the race. A brand-new engine is
    /// admitted only if the append landed at least one version — a failed
    /// *first* append (empty sequence, length/size validation) must not
    /// leave a phantom zero-version object behind.
    fn append_with<R>(
        &self,
        id: ObjectId,
        append: impl Fn(&SecEngine) -> Result<R, StoreError>,
    ) -> Result<R, ClusterError> {
        // audit: panic ok — shard_of maps every id into 0..shards.len() by modulo
        let shard = &self.shards[self.shard_of(id)];
        let existing = shard.objects.read().get(&id).cloned();
        if let Some(engine) = existing {
            return Ok(append(&engine)?);
        }
        // First append (probably — confirmed under the write lock below):
        // encode into a private engine with no map lock held.
        let archive = ByteVersionedArchive::with_codec(self.config, self.codec.clone())
            .map_err(StoreError::from)?;
        // Each engine owns its cache but files entries under the object's
        // id, so per-object statistics and capacities stay independent (the
        // cluster's aggregate metrics sum them).
        let engine = Arc::new(SecEngine::from_layout_with_cache(
            archive,
            Arc::new(DeltaCache::new(self.cache_capacity)),
            id.0,
            self.placement,
            shard.liveness.as_ref().map(Arc::clone),
        ));
        let result = append(&engine);
        // `append_all` serves whatever landed before a mid-sequence error, so
        // admission is keyed on the engine's state, not the result. Probe it
        // *before* taking the object-map lock: `is_empty` acquires the
        // engine's archive lock, and the object map is innermost in the
        // documented hierarchy — no engine lock may be acquired under it.
        // The engine is still private here, so the answer cannot go stale.
        let landed = !engine.is_empty();
        let winner = {
            let mut objects = shard.objects.write();
            match objects.get(&id) {
                Some(winner) => Some(Arc::clone(winner)),
                None => {
                    if landed {
                        objects.insert(id, engine);
                    }
                    None
                }
            }
        };
        match winner {
            // A racing first appender admitted the object while we encoded:
            // drop our never-visible engine and replay on the winner's.
            Some(winner) => Ok(append(&winner)?),
            None => Ok(result?),
        }
    }

    /// Appends the next version of object `id`, routing it to its shard and
    /// creating its archive on first append.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Engine`] for a length mismatch or encoding
    /// failure. A failed first append leaves the cluster without the object
    /// (`contains_object(id)` stays `false`).
    pub fn append_version(&self, id: ObjectId, object: &[u8]) -> Result<VersionId, ClusterError> {
        self.append_with(id, |engine| engine.append_version(object))
    }

    /// Appends every version of a sequence for object `id` in order,
    /// returning the id of the last one.
    ///
    /// # Errors
    ///
    /// Propagates the first append error; versions appended before it remain
    /// served. An empty sequence for an object with no versions yields the
    /// engine's `EmptyArchive` error and does not create the object.
    pub fn append_all<B: AsRef<[u8]>>(
        &self,
        id: ObjectId,
        versions: &[B],
    ) -> Result<VersionId, ClusterError> {
        self.append_with(id, |engine| engine.append_all(versions))
    }

    /// Retrieves version `l` (1-based) of object `id`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for an object with no
    /// versions, otherwise as [`SecEngine::get_version`].
    pub fn get_version(&self, id: ObjectId, l: usize) -> Result<EngineRetrieval, ClusterError> {
        Ok(self.engine_of(id)?.get_version(l)?)
    }

    /// Retrieves a batch of `(object, version)` requests, amortizing the
    /// per-request routing work: consecutive requests for the same object
    /// resolve the shard map **once** and run as one
    /// [`SecEngine::get_versions`] call (one archive lock, one entry
    /// snapshot, cache-primed within the run). This is what the network
    /// server's pipelined `GET` dispatch calls.
    ///
    /// Results come back in request order and are independent: an unknown
    /// object or invalid version fills its own slot with an `Err` without
    /// failing the rest. Callers that interleave objects still get correct
    /// answers — only the amortization degrades to per-request work.
    pub fn get_batch(
        &self,
        requests: &[(ObjectId, usize)],
    ) -> Vec<Result<EngineRetrieval, ClusterError>> {
        let mut results: Vec<Result<EngineRetrieval, ClusterError>> = Vec::with_capacity(requests.len());
        let mut start = 0;
        while start < requests.len() {
            // audit: panic ok — `start < requests.len()` is the loop condition
            let id = requests[start].0;
            let mut end = start + 1;
            while requests.get(end).is_some_and(|&(other, _)| other == id) {
                end += 1;
            }
            // audit: panic ok — start..end indexes a run found within bounds above
            let run = &requests[start..end];
            match self.engine_of(id) {
                Ok(engine) => {
                    let versions: Vec<usize> = run.iter().map(|&(_, l)| l).collect();
                    results.extend(
                        engine
                            .get_versions(&versions)
                            .into_iter()
                            .map(|r| r.map_err(ClusterError::from)),
                    );
                }
                Err(e) => results.extend(run.iter().map(|_| Err(e.clone()))),
            }
            start = end;
        }
        results
    }

    /// Retrieves the first `l` versions of object `id` in order.
    ///
    /// # Errors
    ///
    /// As for [`SecCluster::get_version`].
    pub fn get_prefix(&self, id: ObjectId, l: usize) -> Result<EnginePrefix, ClusterError> {
        Ok(self.engine_of(id)?.get_prefix(l)?)
    }

    /// Drops every cached decoded version of object `id` (a no-op when the
    /// cluster was built without caching).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] for an object with no
    /// versions.
    pub fn clear_cache(&self, id: ObjectId) -> Result<(), ClusterError> {
        self.engine_of(id)?.clear_cache();
        Ok(())
    }

    /// Whether node `node` of shard `shard` is live. Lock-free.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShard`] / [`StoreError::InvalidNode`]
    /// for a bad address, or [`ClusterError::PlacementMismatch`] under
    /// dispersed placement (use [`SecCluster::is_object_node_alive`]).
    pub fn is_node_alive(&self, shard: usize, node: usize) -> Result<bool, ClusterError> {
        let (_, liveness) = self.shard_group(shard)?;
        self.check_node(liveness, node)?;
        Ok(liveness.is_alive(node))
    }

    /// Fails node `node` of shard `shard`: one atomic store, observed by the
    /// read planner of every object on the shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShard`] / [`StoreError::InvalidNode`]
    /// for a bad address — failure-injection typos are handled errors, never
    /// process aborts — or [`ClusterError::PlacementMismatch`] under
    /// dispersed placement (use [`SecCluster::fail_object_node`]).
    pub fn fail_node(&self, shard: usize, node: usize) -> Result<(), ClusterError> {
        let (_, liveness) = self.shard_group(shard)?;
        self.check_node(liveness, node)?;
        liveness.fail(node);
        Ok(())
    }

    /// Revives node `node` of shard `shard`, keeping whatever blocks it held
    /// (crash recovery; use [`SecCluster::repair_node`] after data loss).
    ///
    /// # Errors
    ///
    /// As for [`SecCluster::fail_node`].
    pub fn revive_node(&self, shard: usize, node: usize) -> Result<(), ClusterError> {
        let (_, liveness) = self.shard_group(shard)?;
        self.check_node(liveness, node)?;
        liveness.revive(node);
        Ok(())
    }

    /// Whether node `node` of object `id`'s node space is live. Node ids are
    /// the object's placement ids (entry `e`, position `i` ↔ `e·n + i` under
    /// dispersed; position `i` of the shared shard group under colocated).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] / [`StoreError::InvalidNode`]
    /// for a bad address.
    pub fn is_object_node_alive(&self, id: ObjectId, node: usize) -> Result<bool, ClusterError> {
        Ok(self.engine_of(id)?.is_node_alive(node)?)
    }

    /// Fails node `node` of object `id`'s node space. Under dispersed
    /// placement this degrades exactly one stored entry of exactly this
    /// object; under colocated placement the object's nodes *are* the
    /// shard's shared group, so this is [`SecCluster::fail_node`] for the
    /// object's shard.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownObject`] / [`StoreError::InvalidNode`]
    /// for a bad address.
    pub fn fail_object_node(&self, id: ObjectId, node: usize) -> Result<(), ClusterError> {
        Ok(self.engine_of(id)?.fail_node(node)?)
    }

    /// Revives node `node` of object `id`'s node space, keeping whatever
    /// blocks it held.
    ///
    /// # Errors
    ///
    /// As for [`SecCluster::fail_object_node`].
    pub fn revive_object_node(&self, id: ObjectId, node: usize) -> Result<(), ClusterError> {
        Ok(self.engine_of(id)?.revive_node(node)?)
    }

    /// Repairs node `node` of object `id`'s node space after data loss:
    /// rebuilds the blocks it hosts (one entry's block under dispersed) and
    /// revives it. Dispersed placement only — under colocated placement a
    /// node is shared by every co-hosted object, and repairing it for one
    /// object would revive it with the other objects' blocks still missing;
    /// use [`SecCluster::repair_node`] there.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::PlacementMismatch`] under colocated
    /// placement, [`ClusterError::UnknownObject`] /
    /// [`StoreError::InvalidNode`] for a bad address, or
    /// [`StoreError::Unrecoverable`] when too few live sources remain.
    pub fn repair_object_node(&self, id: ObjectId, node: usize) -> Result<usize, ClusterError> {
        if self.placement == PlacementStrategy::Colocated {
            return Err(ClusterError::PlacementMismatch {
                placement: self.placement,
            });
        }
        Ok(self.engine_of(id)?.repair_node(node)?)
    }

    /// Total nodes in object `id`'s node space (`n` under colocated
    /// placement, `n · entries` under dispersed), or `None` for an unknown
    /// object.
    pub fn object_node_count(&self, id: ObjectId) -> Option<usize> {
        self.engine_of(id).ok().map(|e| e.node_count())
    }

    /// Applies a failure pattern to one shard's nodes.
    ///
    /// **Overwrite semantics** (as [`SecEngine::apply_pattern`]): within the
    /// pattern's length the pattern *is* the shard's new liveness; nodes
    /// beyond its length keep theirs. Use
    /// [`SecCluster::apply_pattern_additive`] to layer failures.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShard`] for a bad shard index, or
    /// [`ClusterError::PlacementMismatch`] under dispersed placement.
    pub fn apply_pattern(&self, shard: usize, pattern: &FailurePattern) -> Result<(), ClusterError> {
        let (_, liveness) = self.shard_group(shard)?;
        for idx in 0..liveness.len() {
            if pattern.is_failed(idx) {
                liveness.fail(idx);
            } else if idx < pattern.len() {
                liveness.revive(idx);
            }
        }
        Ok(())
    }

    /// Fails every node the pattern marks failed on shard `shard`, leaving
    /// all other nodes' liveness untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShard`] for a bad shard index, or
    /// [`ClusterError::PlacementMismatch`] under dispersed placement.
    pub fn apply_pattern_additive(
        &self,
        shard: usize,
        pattern: &FailurePattern,
    ) -> Result<(), ClusterError> {
        let (_, liveness) = self.shard_group(shard)?;
        for idx in 0..liveness.len() {
            if pattern.is_failed(idx) {
                liveness.fail(idx);
            }
        }
        Ok(())
    }

    /// Repairs node `node` of shard `shard` after data loss: rebuilds the
    /// node's blocks for **every** object on the shard (each staged before
    /// commit), then revives the node once. Returns the total number of
    /// blocks rebuilt across objects.
    ///
    /// If any object's rebuild fails the node stays failed and the error is
    /// returned; objects rebuilt before the failure keep their fresh blocks
    /// (they are byte-identical to what a completed repair would have
    /// written), so no object is ever left *less* recoverable than before
    /// the call.
    ///
    /// The concluding revive is epoch-checked: the repair snapshots the
    /// node's failure epoch before rebuilding and only commits if no new
    /// failure landed while the rebuilds ran — otherwise the rebuilt blocks
    /// may miss writes that arrived after the new failure, and reviving
    /// would serve a node the rebuild never saw. Objects admitted *during*
    /// the repair are safe either way: a first append writes complete
    /// blocks, so the new object needs nothing from this rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidShard`] / [`StoreError::InvalidNode`]
    /// for a bad address, [`ClusterError::PlacementMismatch`] under
    /// dispersed placement (use [`SecCluster::repair_object_node`]),
    /// [`StoreError::Unrecoverable`] when some object's entry has fewer than
    /// `k` other live blocks, or [`StoreError::RepairRaced`] when the node
    /// failed again mid-repair (re-run the repair).
    pub fn repair_node(&self, shard: usize, node: usize) -> Result<usize, ClusterError> {
        let (s, liveness) = self.shard_group(shard)?;
        self.check_node(liveness, node)?;
        let epoch = liveness.epoch(node);
        // Snapshot the engines, then release the map lock: rebuilds decode
        // k blocks per entry per object and must not block object admission.
        let engines: Vec<Arc<SecEngine>> = s.objects.read().values().cloned().collect();
        let mut rebuilt = 0usize;
        for engine in engines {
            rebuilt += engine.rebuild_node(node)?;
            fault::reached("cluster::repair::window");
        }
        if !liveness.try_commit_repair(node, epoch) {
            return Err(ClusterError::Engine(StoreError::RepairRaced { node }));
        }
        Ok(rebuilt)
    }

    /// A point-in-time snapshot of every counter the cluster maintains,
    /// aggregated per shard and cluster-wide.
    pub fn metrics_snapshot(&self) -> ClusterMetrics {
        self.collect_metrics(|engine| engine.metrics_snapshot())
    }

    /// Resets every object engine's aggregate I/O counters and returns the
    /// final pre-reset cluster metrics.
    ///
    /// Per-engine semantics are [`SecEngine::reset_metrics`]: the I/O
    /// counters are drained with atomic swaps (each counter increment is
    /// reported exactly once across reset epochs), while per-node read
    /// counters, cache statistics, liveness and version counts keep
    /// accumulating.
    pub fn reset_metrics(&self) -> ClusterMetrics {
        self.collect_metrics(|engine| engine.reset_metrics())
    }

    fn collect_metrics(&self, view: impl Fn(&SecEngine) -> EngineMetrics) -> ClusterMetrics {
        let n = self.node_count();
        let mut totals = ClusterMetrics {
            placement: self.placement,
            shards: Vec::with_capacity(self.shards.len()),
            io: IoMetrics::new(),
            cache: CacheStats::default(),
            nodes: 0,
            live_nodes: 0,
            objects: 0,
            versions: 0,
            deltas_applied: 0,
            checkpoints_written: 0,
        };
        for shard in &self.shards {
            let engines: Vec<Arc<SecEngine>> = shard.objects.read().values().cloned().collect();
            let mut sm = ShardMetrics {
                io: IoMetrics::new(),
                node_reads: vec![0; n],
                live_nodes: 0,
                nodes: 0,
                objects: engines.len(),
                versions: 0,
                cache: CacheStats::default(),
                deltas_applied: 0,
                checkpoints_written: 0,
            };
            for engine in engines {
                let m = view(&engine);
                sm.io.absorb(&m.io);
                // Per-object node spaces fold onto the n codeword positions
                // (the identity map for a colocated engine's n nodes).
                for (idx, reads) in m.node_reads.iter().enumerate() {
                    // audit: panic ok — `idx % n` is always < n = node_reads.len()
                    sm.node_reads[idx % n] += reads;
                }
                sm.versions += m.versions;
                sm.cache.absorb(&m.cache);
                sm.deltas_applied += m.deltas_applied;
                sm.checkpoints_written += m.checkpoints_written;
                if self.placement == PlacementStrategy::Dispersed {
                    sm.live_nodes += m.live_nodes;
                    sm.nodes += m.nodes;
                }
            }
            if let Some(liveness) = &shard.liveness {
                // Colocated: the shard's physical group, whether or not any
                // object lives on it yet.
                sm.live_nodes = liveness.live_count();
                sm.nodes = n;
            }
            totals.io.absorb(&sm.io);
            totals.cache.absorb(&sm.cache);
            totals.nodes += sm.nodes;
            totals.live_nodes += sm.live_nodes;
            totals.objects += sm.objects;
            totals.versions += sm.versions;
            totals.deltas_applied += sm.deltas_applied;
            totals.checkpoints_written += sm.checkpoints_written;
            totals.shards.push(sm);
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;
    use sec_versioning::{EncodingStrategy, VersioningError};

    const N: usize = 6;
    const K: usize = 3;

    fn config(strategy: EncodingStrategy) -> ArchiveConfig {
        ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap()
    }

    fn cluster(shards: usize) -> SecCluster {
        SecCluster::new(config(EncodingStrategy::BasicSec), shards).unwrap()
    }

    /// Three versions of a 60-byte object, seeded so distinct objects get
    /// distinct histories.
    fn versions(seed: u8) -> Vec<Vec<u8>> {
        let v1: Vec<u8> = (0..60).map(|i| (i * 7) as u8 ^ seed).collect();
        let mut v2 = v1.clone();
        v2[5] ^= 0x7C; // block 0
        let mut v3 = v2.clone();
        v3[25] ^= 0x11; // block 1
        vec![v1, v2, v3]
    }

    /// Finds an id (probing a salt) that routes to `shard`.
    fn id_on_shard(cluster: &SecCluster, shard: usize, mut salt: u64) -> ObjectId {
        loop {
            let id = ObjectId(salt);
            if cluster.shard_of(id) == shard {
                return id;
            }
            salt = salt.wrapping_add(0x1000_0000_0100_0001);
        }
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        let cluster = cluster(4);
        let mut hit = [false; 4];
        for raw in 0..64u64 {
            let shard = cluster.shard_of(ObjectId(raw));
            assert!(shard < 4);
            assert_eq!(shard, cluster.shard_of(ObjectId(raw)), "routing must be stable");
            hit[shard] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 dense ids must reach all 4 shards");
        // Name-derived ids are stable too.
        assert_eq!(
            ObjectId::from_name("wiki/Main_Page"),
            ObjectId::from_name("wiki/Main_Page")
        );
        assert_ne!(ObjectId::from_name("a"), ObjectId::from_name("b"));
    }

    #[test]
    fn objects_keep_independent_version_sequences() {
        let cluster = cluster(4);
        let a = ObjectId(1);
        let b = ObjectId(2);
        cluster.append_all(a, &versions(0)).unwrap();
        cluster.append_version(b, &versions(0x40)[0]).unwrap();
        // Version numbering is per object: b has exactly one version even
        // though a already has three.
        assert_eq!(cluster.version_count(a), Some(3));
        assert_eq!(cluster.version_count(b), Some(1));
        assert_eq!(*cluster.get_version(a, 3).unwrap().data, versions(0)[2]);
        assert_eq!(*cluster.get_version(b, 1).unwrap().data, versions(0x40)[0]);
        assert!(matches!(
            cluster.get_version(b, 2),
            Err(ClusterError::Engine(StoreError::Versioning(
                VersioningError::NoSuchVersion { .. }
            )))
        ));
        let p = cluster.get_prefix(a, 2).unwrap();
        assert_eq!(p.versions, &versions(0)[..2]);
        assert_eq!(cluster.object_count(), 2);
    }

    #[test]
    fn addressing_errors_never_panic() {
        let cluster = cluster(2);
        assert!(matches!(
            SecCluster::new(config(EncodingStrategy::BasicSec), 0),
            Err(ClusterError::NoShards)
        ));
        assert!(matches!(
            cluster.get_version(ObjectId(7), 1),
            Err(ClusterError::UnknownObject { object: ObjectId(7) })
        ));
        assert!(matches!(
            cluster.fail_node(2, 0),
            Err(ClusterError::InvalidShard { shard: 2, shards: 2 })
        ));
        assert!(matches!(
            cluster.fail_node(0, N),
            Err(ClusterError::Engine(StoreError::InvalidNode { node: 6, n: 6 }))
        ));
        assert!(matches!(
            cluster.revive_node(1, 99),
            Err(ClusterError::Engine(StoreError::InvalidNode { .. }))
        ));
        assert!(matches!(
            cluster.repair_node(0, 99),
            Err(ClusterError::Engine(StoreError::InvalidNode { .. }))
        ));
        assert!(cluster.is_node_alive(1, 99).is_err());
        assert!(cluster.apply_pattern(9, &FailurePattern::none(N)).is_err());
        assert!(cluster
            .apply_pattern_additive(9, &FailurePattern::none(N))
            .is_err());
        // Display impls cover the addressing errors.
        assert!(ClusterError::NoShards.to_string().contains("at least one"));
        assert!(cluster
            .fail_node(2, 0)
            .unwrap_err()
            .to_string()
            .contains("shard 2"));
        assert!(cluster
            .get_version(ObjectId(7), 1)
            .unwrap_err()
            .to_string()
            .contains("object-"));
    }

    #[test]
    fn failed_first_append_leaves_no_phantom_object() {
        let cluster = cluster(2);
        let id = ObjectId(5);
        // Empty first sequence: no versions landed, so the object must not
        // be admitted.
        let empty: Vec<Vec<u8>> = Vec::new();
        assert!(matches!(
            cluster.append_all(id, &empty),
            Err(ClusterError::Engine(StoreError::Versioning(
                VersioningError::EmptyArchive
            )))
        ));
        assert!(!cluster.contains_object(id));
        assert_eq!(cluster.object_count(), 0);
        assert_eq!(cluster.version_count(id), None);
        assert!(matches!(
            cluster.get_version(id, 1),
            Err(ClusterError::UnknownObject { .. })
        ));

        // A partially successful first sequence serves what landed before
        // the error, exactly like SecEngine::append_all.
        let vs = versions(0);
        let mixed: Vec<Vec<u8>> = vec![vs[0].clone(), vec![1, 2, 3]]; // wrong length
        assert!(matches!(
            cluster.append_all(id, &mixed),
            Err(ClusterError::Engine(StoreError::Versioning(
                VersioningError::ObjectLengthMismatch { .. }
            )))
        ));
        assert!(cluster.contains_object(id));
        assert_eq!(cluster.version_count(id), Some(1));
        assert_eq!(*cluster.get_version(id, 1).unwrap().data, vs[0]);

        // Appends to the now-existing object keep working.
        cluster.append_version(id, &vs[1]).unwrap();
        assert_eq!(cluster.version_count(id), Some(2));
    }

    #[test]
    fn shard_failure_hits_cohosted_objects_but_not_other_shards() {
        let cluster = cluster(2);
        let on0 = id_on_shard(&cluster, 0, 1);
        let also0 = id_on_shard(&cluster, 0, on0.0.wrapping_add(1));
        let on1 = id_on_shard(&cluster, 1, 2);
        cluster.append_all(on0, &versions(0)).unwrap();
        cluster.append_all(also0, &versions(1)).unwrap();
        cluster.append_all(on1, &versions(2)).unwrap();

        // n − k failures on shard 0: both of its objects survive, shard 1
        // untouched.
        for node in 0..N - K {
            cluster.fail_node(0, node).unwrap();
        }
        assert_eq!(*cluster.get_version(on0, 3).unwrap().data, versions(0)[2]);
        assert_eq!(*cluster.get_version(also0, 3).unwrap().data, versions(1)[2]);
        assert_eq!(cluster.metrics_snapshot().shards[0].live_nodes, K);
        assert_eq!(cluster.metrics_snapshot().shards[1].live_nodes, N);

        // One more failure makes *both* shard-0 objects unrecoverable —
        // the shard is one failure domain — while shard 1 still serves.
        cluster.fail_node(0, N - K).unwrap();
        assert!(matches!(
            cluster.get_version(on0, 1),
            Err(ClusterError::Engine(StoreError::Unrecoverable { .. }))
        ));
        assert!(matches!(
            cluster.get_version(also0, 1),
            Err(ClusterError::Engine(StoreError::Unrecoverable { .. }))
        ));
        assert_eq!(*cluster.get_version(on1, 3).unwrap().data, versions(2)[2]);

        // Repair rebuilds the node for every object on the shard: 3 stored
        // entries per object × 2 objects.
        cluster.revive_node(0, 0).unwrap();
        let rebuilt = cluster.repair_node(0, 1).unwrap();
        assert_eq!(rebuilt, 6);
        assert!(cluster.is_node_alive(0, 1).unwrap());
        assert_eq!(*cluster.get_version(on0, 3).unwrap().data, versions(0)[2]);
        assert_eq!(*cluster.get_version(also0, 3).unwrap().data, versions(1)[2]);
    }

    #[test]
    fn patterns_apply_per_shard_with_overwrite_and_additive_semantics() {
        let cluster = cluster(2);
        cluster.fail_node(0, 4).unwrap();
        // Additive keeps node 4 down; overwrite revives it.
        cluster
            .apply_pattern_additive(0, &FailurePattern::with_failures(N, &[1]))
            .unwrap();
        assert!(!cluster.is_node_alive(0, 4).unwrap());
        assert!(!cluster.is_node_alive(0, 1).unwrap());
        cluster
            .apply_pattern(0, &FailurePattern::with_failures(N, &[1]))
            .unwrap();
        assert!(cluster.is_node_alive(0, 4).unwrap());
        assert!(!cluster.is_node_alive(0, 1).unwrap());
        // Shard 1 was never touched.
        assert_eq!(cluster.metrics_snapshot().shards[1].live_nodes, N);
    }

    #[test]
    fn metrics_aggregate_across_objects_and_shards() {
        let cluster = SecCluster::with_cache(config(EncodingStrategy::BasicSec), 2, 2).unwrap();
        let a = ObjectId(1);
        let b = ObjectId(2);
        cluster.append_all(a, &versions(0)).unwrap();
        cluster.append_all(b, &versions(9)).unwrap();
        let cold = cluster.reset_metrics(); // drain the append-side counters
        assert!(cold.io.symbol_writes > 0, "pre-reset totals are returned");

        let r1 = cluster.get_version(a, 1).unwrap();
        let r2 = cluster.get_version(b, 1).unwrap();
        let m = cluster.metrics_snapshot();
        assert_eq!(m.objects, 2);
        assert_eq!(m.versions, 6);
        assert_eq!(m.io.retrievals, 2);
        assert_eq!(m.io.symbol_reads as usize, r1.io_reads + r2.io_reads);
        assert_eq!(
            m.shards.iter().map(|s| s.io.symbol_reads).sum::<u64>(),
            m.io.symbol_reads
        );
        assert_eq!(
            m.shards.iter().flat_map(|s| s.node_reads.iter()).sum::<u64>(),
            m.io.symbol_reads,
            "per-node counters must sum to the aggregate"
        );
        // Appends pre-warmed each object's cache: hot reads cost no I/O.
        assert!(cluster.get_version(a, 3).unwrap().cached);
        let m = cluster.metrics_snapshot();
        assert!(m.cache.hits >= 1);
        assert_eq!(m.cache.capacity, 4, "two objects × capacity 2");

        // reset_metrics drains exactly the accumulated I/O; a fresh snapshot
        // starts from zero.
        let drained = cluster.reset_metrics();
        assert_eq!(drained.io.retrievals, 3);
        assert_eq!(cluster.metrics_snapshot().io, IoMetrics::default());
        // Node-read counters survive resets.
        assert!(
            drained
                .shards
                .iter()
                .flat_map(|s| s.node_reads.iter())
                .sum::<u64>()
                > 0
        );
    }

    #[test]
    fn dispersed_cluster_uses_object_scoped_node_addressing() {
        let cluster = SecCluster::with_placement(
            config(EncodingStrategy::BasicSec),
            2,
            0,
            PlacementStrategy::Dispersed,
        )
        .unwrap();
        assert_eq!(cluster.placement(), PlacementStrategy::Dispersed);
        let a = ObjectId(1);
        let b = ObjectId(2);
        cluster.append_all(a, &versions(0)).unwrap();
        cluster.append_all(b, &versions(7)).unwrap();
        // Three stored entries × six private nodes each.
        assert_eq!(cluster.object_node_count(a), Some(3 * N));
        // Shard-scoped node addressing has no shared group to hit: a
        // placement mismatch, never a panic.
        assert!(matches!(
            cluster.fail_node(0, 0),
            Err(ClusterError::PlacementMismatch { .. })
        ));
        assert!(cluster.is_node_alive(0, 0).is_err());
        assert!(cluster.revive_node(0, 0).is_err());
        assert!(cluster.repair_node(0, 0).is_err());
        assert!(cluster.apply_pattern(0, &FailurePattern::none(N)).is_err());
        assert!(cluster
            .apply_pattern_additive(0, &FailurePattern::none(N))
            .is_err());
        assert!(cluster
            .fail_node(0, 0)
            .unwrap_err()
            .to_string()
            .contains("dispersed"));
        // Bad shard indices still win over placement checks.
        assert!(matches!(
            cluster.fail_node(9, 0),
            Err(ClusterError::InvalidShard { .. })
        ));

        // Failing every node of a's entry 2 (δ3) degrades only a's v3.
        for node in 2 * N..3 * N {
            cluster.fail_object_node(a, node).unwrap();
        }
        assert!(!cluster.is_object_node_alive(a, 2 * N).unwrap());
        assert_eq!(*cluster.get_version(a, 2).unwrap().data, versions(0)[1]);
        assert!(matches!(
            cluster.get_version(a, 3),
            Err(ClusterError::Engine(StoreError::Unrecoverable { entry: 2 }))
        ));
        // b is untouched — even if it shares a's shard.
        assert_eq!(*cluster.get_version(b, 3).unwrap().data, versions(7)[2]);

        // Object-scoped repair rebuilds the single hosted block.
        for node in 2 * N..3 * N {
            cluster.revive_object_node(a, node).unwrap();
        }
        cluster.fail_object_node(a, 2 * N).unwrap();
        assert_eq!(cluster.repair_object_node(a, 2 * N).unwrap(), 1);
        assert_eq!(*cluster.get_version(a, 3).unwrap().data, versions(0)[2]);
        // Out-of-range object node ids surface the engine's InvalidNode.
        assert!(matches!(
            cluster.fail_object_node(a, 3 * N),
            Err(ClusterError::Engine(StoreError::InvalidNode { .. }))
        ));
        assert_eq!(cluster.object_node_count(ObjectId(99)), None);
    }

    #[test]
    fn colocated_object_scoped_ops_hit_the_shared_shard_group() {
        let cluster = cluster(2);
        let a = ObjectId(1);
        cluster.append_all(a, &versions(0)).unwrap();
        // Object-scoped failure flips the shard's shared liveness…
        cluster.fail_object_node(a, 0).unwrap();
        assert!(!cluster.is_node_alive(cluster.shard_of(a), 0).unwrap());
        assert!(!cluster.is_object_node_alive(a, 0).unwrap());
        cluster.revive_object_node(a, 0).unwrap();
        assert!(cluster.is_node_alive(cluster.shard_of(a), 0).unwrap());
        // …but object-scoped repair is refused: it would revive a shared
        // node with co-hosted objects' blocks still missing.
        assert!(matches!(
            cluster.repair_object_node(a, 0),
            Err(ClusterError::PlacementMismatch { .. })
        ));
        assert_eq!(cluster.object_node_count(a), Some(N));
    }

    #[test]
    fn metrics_report_per_placement_node_counts() {
        // Colocated: n nodes per shard exist with or without objects.
        let colo = cluster(2);
        let m = colo.metrics_snapshot();
        assert_eq!(m.placement, PlacementStrategy::Colocated);
        assert_eq!(m.nodes, 2 * N);
        assert_eq!(m.live_nodes, 2 * N);
        assert!(m.shards.iter().all(|s| s.nodes == N));

        // Dispersed: nodes exist per stored entry, summed over objects.
        let disp = SecCluster::with_placement(
            config(EncodingStrategy::BasicSec),
            2,
            0,
            PlacementStrategy::Dispersed,
        )
        .unwrap();
        assert_eq!(disp.metrics_snapshot().nodes, 0);
        let a = ObjectId(1);
        let b = ObjectId(2);
        disp.append_all(a, &versions(0)).unwrap();
        disp.append_all(b, &versions(3)).unwrap();
        disp.fail_object_node(b, 0).unwrap();
        let m = disp.metrics_snapshot();
        assert_eq!(m.placement, PlacementStrategy::Dispersed);
        assert_eq!(m.nodes, 2 * 3 * N);
        assert_eq!(m.live_nodes, 2 * 3 * N - 1);
        assert_eq!(m.shards.iter().map(|s| s.nodes).sum::<usize>(), m.nodes);
        // Per-object node spaces fold onto the n codeword positions.
        let r = disp.get_version(a, 1).unwrap();
        let m = disp.metrics_snapshot();
        assert!(m.shards.iter().all(|s| s.node_reads.len() == N));
        assert_eq!(
            m.shards.iter().flat_map(|s| s.node_reads.iter()).sum::<u64>() as usize,
            r.io_reads
        );
    }

    #[test]
    fn codec_tables_are_shared_across_objects() {
        let cluster = cluster(4);
        let tables = cluster.codec().shared_tables();
        let before = Arc::strong_count(&tables);
        for raw in 0..8u64 {
            cluster
                .append_version(ObjectId(raw), &versions(raw as u8)[0])
                .unwrap();
        }
        // Every new object added codec handles pointing at the *same*
        // tables allocation — nothing rebuilt its own.
        assert!(Arc::strong_count(&tables) > before);
        assert!(Arc::ptr_eq(&tables, &cluster.codec().shared_tables()));
    }
}
