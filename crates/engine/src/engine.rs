//! The [`SecEngine`]: a sharded-lock serving layer over a byte archive and
//! its distributed storage nodes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Liveness flags of `n` storage nodes, outside every lock.
///
/// Kept in its own (crate-internal) type so a [`SecCluster`](crate::SecCluster)
/// shard can share one liveness array across the per-object engines that live
/// on the same physical nodes: failing a shard's node is then a single atomic
/// store observed by every object's read planner at once.
#[derive(Debug)]
pub(crate) struct NodeLiveness {
    alive: Vec<AtomicBool>,
}

impl NodeLiveness {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether node `node` is live. Callers must have range-checked `node`.
    pub(crate) fn is_alive(&self, node: usize) -> bool {
        self.alive[node].load(Ordering::Acquire)
    }

    /// Sets node `node`'s liveness. Callers must have range-checked `node`.
    pub(crate) fn set(&self, node: usize, alive: bool) {
        self.alive[node].store(alive, Ordering::Release);
    }

    pub(crate) fn live_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_alive(i)).count()
    }
}

use sec_erasure::read_plan::plan_read;
use sec_erasure::{ByteCodec, ByteShards};
use sec_store::node::{StorageNode, SymbolKey};
use sec_store::{AtomicIoMetrics, FailurePattern, IoMetrics, StoreError};
use sec_versioning::object::VersionId;
use sec_versioning::walk::{decode_planned, read_target, trim_object, walk_prefix, walk_version};
use sec_versioning::{
    ArchiveConfig, ByteVersionedArchive, CacheStats, EncodingStrategy, StoredPayload, VersionCache,
    VersioningError,
};

/// Result of one engine retrieval.
#[derive(Debug, Clone)]
pub struct EngineRetrieval {
    /// The 1-based version number that was retrieved.
    pub version: usize,
    /// The reconstructed byte object. Shared so cache hits cost a refcount
    /// bump, not a copy.
    pub data: Arc<Vec<u8>>,
    /// Block reads spent serving this retrieval (0 on a cache hit).
    pub io_reads: usize,
    /// Whether the version was served from the engine's version cache.
    pub cached: bool,
}

/// Result of retrieving the first `l` versions through the engine.
#[derive(Debug, Clone)]
pub struct EnginePrefix {
    /// The reconstructed versions `x_1, …, x_l` in order.
    pub versions: Vec<Vec<u8>>,
    /// Total block reads spent.
    pub io_reads: usize,
}

/// A point-in-time view of everything the engine counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Aggregate I/O counters (block reads/writes, retrievals, repairs).
    pub io: IoMetrics,
    /// Reads served by each storage node, by node id.
    pub node_reads: Vec<u64>,
    /// Number of currently live nodes.
    pub live_nodes: usize,
    /// Version-cache statistics.
    pub cache: CacheStats,
    /// Number of versions appended so far.
    pub versions: usize,
}

/// A concurrent SEC serving engine.
///
/// # Locking model
///
/// The engine holds three kinds of shared state, ordered so no lock is ever
/// acquired while holding a later-ordered one in reverse:
///
/// 1. **Archive** (`RwLock<ByteVersionedArchive>`) — entry metadata
///    (payloads, sparsity levels, shard lengths) and the plaintext tail used
///    for delta computation. Readers take it shared just long enough to
///    snapshot the entry metadata, then release it for the append-only
///    strategies (Basic/Optimized/NonDifferential) — so an in-flight
///    `append_version` (which takes it exclusively) does not block the block
///    reads of concurrent retrievals. Reversed SEC rewrites its trailing
///    full-copy slot in place on append, so its readers hold the lock for
///    the whole walk.
/// 2. **Storage nodes** (`Vec<RwLock<StorageNode<Vec<u8>>>>`) — one lock per
///    node, so a `2γ`-read sparse retrieval locks only the `2γ` nodes its
///    plan names, and writers (append, repair) lock one node at a time.
/// 3. **Liveness** (`Vec<AtomicBool>`) — outside every lock. Read planning
///    is lock-free: [`SecEngine::fail_node`] is a single atomic store and
///    never blocks in-flight retrievals.
///
/// Counters ([`AtomicIoMetrics`], per-node read counts, cache statistics)
/// are atomics and never require exclusive access.
///
/// Retrieval results are linearized at the archive read lock: a reader sees
/// either all of an append or none of it, and liveness is snapshotted at
/// plan time (a node failing mid-read still serves blocks it already held —
/// the crash model, where data survives on disk).
#[derive(Debug)]
pub struct SecEngine {
    archive: RwLock<ByteVersionedArchive>,
    codec: ByteCodec,
    nodes: Vec<RwLock<StorageNode<Vec<u8>>>>,
    alive: Arc<NodeLiveness>,
    metrics: AtomicIoMetrics,
    cache: VersionCache<Vec<u8>>,
}

impl SecEngine {
    /// Creates an empty engine for the given archive configuration, with the
    /// version cache disabled (every read hits the nodes — the mode whose
    /// read accounting is bit-compatible with the reference archive).
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn new(config: ArchiveConfig) -> Result<Self, StoreError> {
        Self::with_cache(config, 0)
    }

    /// Creates an empty engine whose version cache holds up to
    /// `cache_capacity` decoded versions (0 disables caching).
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn with_cache(config: ArchiveConfig, cache_capacity: usize) -> Result<Self, StoreError> {
        let archive = ByteVersionedArchive::new(config)?;
        Ok(Self::from_archive_with_cache(archive, cache_capacity))
    }

    /// Creates an empty engine that reuses an existing codec (its code and
    /// `GF(2^8)` multiplication tables sit behind `Arc`s) instead of building
    /// one — the constructor a multi-engine deployment uses so the tables
    /// exist once per process, not once per engine.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Versioning`] when the codec's code does not
    /// match the configuration's `(n, k, form)`.
    pub fn with_shared_codec(
        config: ArchiveConfig,
        codec: &ByteCodec,
        cache_capacity: usize,
    ) -> Result<Self, StoreError> {
        let archive = ByteVersionedArchive::with_codec(config, codec.clone())?;
        Ok(Self::from_archive_with_cache(archive, cache_capacity))
    }

    /// Wraps an existing archive, distributing its coded blocks across the
    /// engine's nodes (colocated placement: node `i` holds block position
    /// `i` of every stored entry, the placement the paper shows maximizes
    /// whole-archive resilience).
    pub fn from_archive(archive: ByteVersionedArchive) -> Self {
        Self::from_archive_with_cache(archive, 0)
    }

    /// Like [`SecEngine::from_archive`] with a version cache of the given
    /// capacity.
    pub fn from_archive_with_cache(archive: ByteVersionedArchive, cache_capacity: usize) -> Self {
        let n = archive.code().n();
        Self::from_parts(archive, cache_capacity, Arc::new(NodeLiveness::new(n)))
    }

    /// Wraps an archive around an externally owned liveness array — the
    /// cluster constructor: every per-object engine of one shard shares the
    /// shard's liveness, so failing a shard node is one atomic store.
    pub(crate) fn from_parts(
        archive: ByteVersionedArchive,
        cache_capacity: usize,
        alive: Arc<NodeLiveness>,
    ) -> Self {
        debug_assert_eq!(alive.len(), archive.code().n());
        let codec = archive.codec().clone();
        let metrics = AtomicIoMetrics::new();
        let mut nodes: Vec<StorageNode<Vec<u8>>> =
            (0..archive.code().n()).map(StorageNode::new).collect();
        for (entry_idx, entry) in archive.stored_entries().iter().enumerate() {
            for (position, node) in nodes.iter_mut().enumerate().take(entry.shards.shard_count()) {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                node.put(key, entry.shards.shard(position).to_vec());
                metrics.add_symbol_writes(1);
            }
        }
        Self {
            archive: RwLock::new(archive),
            codec,
            nodes: nodes.into_iter().map(RwLock::new).collect(),
            alive,
            metrics,
            cache: VersionCache::new(cache_capacity),
        }
    }

    /// The archive configuration.
    pub fn config(&self) -> ArchiveConfig {
        self.read_archive().config()
    }

    /// Number of storage nodes (`n`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of versions appended so far.
    pub fn len(&self) -> usize {
        self.read_archive().len()
    }

    /// `true` when no version has been appended.
    pub fn is_empty(&self) -> bool {
        self.read_archive().is_empty()
    }

    /// Range-checks a node id against this engine's cluster size.
    fn check_node(&self, node: usize) -> Result<(), StoreError> {
        if node >= self.alive.len() {
            return Err(StoreError::InvalidNode {
                node,
                n: self.alive.len(),
            });
        }
        Ok(())
    }

    /// Whether node `node` is currently live. Lock-free.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range — a bad
    /// node id is an error the caller handles, never a process abort.
    pub fn is_node_alive(&self, node: usize) -> Result<bool, StoreError> {
        self.check_node(node)?;
        Ok(self.alive.is_alive(node))
    }

    /// Marks a node failed. Lock-free: in-flight retrievals that already
    /// planned around the node finish normally (the crash model — blocks
    /// survive on disk), later plans exclude it.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range, so a
    /// typo in a failure-injection script is a handled error instead of a
    /// panic inside the serving process.
    pub fn fail_node(&self, node: usize) -> Result<(), StoreError> {
        self.check_node(node)?;
        self.alive.set(node, false);
        Ok(())
    }

    /// Revives a node, keeping whatever blocks it held (crash recovery; use
    /// [`SecEngine::repair_node`] after data loss).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range.
    pub fn revive_node(&self, node: usize) -> Result<(), StoreError> {
        self.check_node(node)?;
        self.alive.set(node, true);
        Ok(())
    }

    /// Applies a failure pattern across the cluster.
    ///
    /// **Overwrite semantics:** within the pattern's length the pattern *is*
    /// the new liveness — covered nodes the pattern marks alive are revived
    /// even if they were failed before the call (so replaying a sequence of
    /// sampled patterns always leaves the cluster in the last pattern's
    /// state). Nodes beyond the pattern's length keep their liveness. Use
    /// [`SecEngine::apply_pattern_additive`] to layer failures instead.
    pub fn apply_pattern(&self, pattern: &FailurePattern) {
        for idx in 0..self.alive.len() {
            if pattern.is_failed(idx) {
                self.alive.set(idx, false);
            } else if idx < pattern.len() {
                self.alive.set(idx, true);
            }
        }
    }

    /// Fails every node the pattern marks failed and leaves all other nodes'
    /// liveness untouched — the additive counterpart of
    /// [`SecEngine::apply_pattern`], for tests and experiments that layer
    /// patterns on top of already-injected failures.
    pub fn apply_pattern_additive(&self, pattern: &FailurePattern) {
        for idx in 0..self.alive.len() {
            if pattern.is_failed(idx) {
                self.alive.set(idx, false);
            }
        }
    }

    /// Appends the next version, encoding it under the configured strategy
    /// and writing every new coded block to its node.
    ///
    /// Takes the archive lock exclusively; concurrent readers observe either
    /// the archive before the append or after it, never an intermediate
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Versioning`] for a length mismatch or encoding
    /// failure.
    pub fn append_version(&self, object: &[u8]) -> Result<VersionId, StoreError> {
        let mut archive = self.archive.write().expect("archive lock poisoned");
        let stored_before = archive.stored_entry_count();
        let id = archive.append_version(object)?;
        // Reversed SEC rewrites the trailing full copy's slot (it becomes
        // the new delta) in addition to appending; every other strategy only
        // appends one entry.
        let start = match archive.config().strategy() {
            EncodingStrategy::ReversedSec => stored_before.saturating_sub(1),
            _ => stored_before,
        };
        let entries = archive.stored_entries();
        for (entry_idx, entry) in entries.iter().enumerate().skip(start) {
            for position in 0..entry.shards.shard_count() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                let mut node = self.nodes[position].write().expect("node lock poisoned");
                node.put(key, entry.shards.shard(position).to_vec());
                self.metrics.add_symbol_writes(1);
            }
        }
        // Pre-warm only when a cache exists; a disabled cache must not cost
        // an object copy per append.
        if self.cache.capacity() > 0 {
            self.cache.insert(id.0, object.to_vec());
        }
        Ok(id)
    }

    /// Appends every version of a sequence in order, returning the id of the
    /// last one.
    ///
    /// # Errors
    ///
    /// Propagates the first append error; versions appended before it remain
    /// served. An empty sequence on an empty engine yields
    /// [`VersioningError::EmptyArchive`].
    pub fn append_all<B: AsRef<[u8]>>(&self, versions: &[B]) -> Result<VersionId, StoreError> {
        let mut last = None;
        for version in versions {
            last = Some(self.append_version(version.as_ref())?);
        }
        match last {
            Some(id) => Ok(id),
            None => {
                if self.is_empty() {
                    Err(StoreError::Versioning(VersioningError::EmptyArchive))
                } else {
                    Ok(VersionId(self.len()))
                }
            }
        }
    }

    /// Retrieves version `l` (1-based), reading blocks only from live nodes
    /// under the SEC read plan (`2γ` block reads per exploitable delta, `k`
    /// otherwise), or from the version cache when it holds `l`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] when too many nodes have
    /// failed, [`StoreError::Versioning`] for an invalid `l`, or
    /// [`StoreError::Code`] for a corrupt block.
    pub fn get_version(&self, l: usize) -> Result<EngineRetrieval, StoreError> {
        let archive = self.read_archive();
        check_version(&archive, l)?;
        self.metrics.add_retrieval();
        // Probe the cache only for a validated version, so an out-of-range
        // request can never register as a (phantom) cache miss.
        if let Some(data) = self.cache.get(l) {
            return Ok(EngineRetrieval {
                version: l,
                data,
                io_reads: 0,
                cached: true,
            });
        }
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        let out = walk_version(
            strategy,
            entries.len(),
            |idx| entries[idx].0,
            l,
            |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
        )?;
        let data = self.cache.insert(l, trim_object(&out.shards, object_len));
        Ok(EngineRetrieval {
            version: l,
            data,
            io_reads: out.io_reads,
            cached: false,
        })
    }

    /// Retrieves the first `l` versions in order. Bypasses the version cache
    /// so its read accounting matches the reference archive exactly.
    ///
    /// # Errors
    ///
    /// As for [`SecEngine::get_version`].
    pub fn get_prefix(&self, l: usize) -> Result<EnginePrefix, StoreError> {
        let archive = self.read_archive();
        check_version(&archive, l)?;
        self.metrics.add_retrieval();
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        let out = walk_prefix(
            strategy,
            entries.len(),
            |idx| entries[idx].0,
            l,
            object_len,
            |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
        )?;
        Ok(EnginePrefix {
            versions: out.versions,
            io_reads: out.io_reads,
        })
    }

    /// Snapshots the entry metadata a walk needs — `(payload, shard_len)`
    /// per stored entry — and releases the archive read lock when the
    /// strategy allows it.
    ///
    /// Basic/Optimized/NonDifferential archives are append-only: existing
    /// entries and their node blocks never change, so once the metadata is
    /// snapshotted the walk can run without the archive lock and a
    /// concurrent `append_version` no longer blocks readers (this is what
    /// makes the per-node lock sharding real). Reversed SEC rewrites the
    /// trailing full-copy slot in place on every append, so its readers
    /// keep the lock to pin that slot.
    #[allow(clippy::type_complexity)]
    fn snapshot_entries<'a>(
        &self,
        archive: RwLockReadGuard<'a, ByteVersionedArchive>,
    ) -> (
        EncodingStrategy,
        usize,
        Vec<(StoredPayload, usize)>,
        Option<RwLockReadGuard<'a, ByteVersionedArchive>>,
    ) {
        let strategy = archive.config().strategy();
        let object_len = archive.object_len().unwrap_or(0);
        let entries: Vec<(StoredPayload, usize)> = archive
            .stored_entries()
            .iter()
            .map(|e| (e.payload, e.shards.shard_len()))
            .collect();
        let pin = match strategy {
            EncodingStrategy::ReversedSec => Some(archive),
            _ => None,
        };
        (strategy, object_len, entries, pin)
    }

    /// Repairs a node after data loss: rebuilds every block it should hold
    /// from `k` live blocks per entry, then atomically replaces the node's
    /// contents and revives it. Returns the number of blocks rebuilt.
    ///
    /// The rebuild is staged: all blocks are decoded into a buffer *before*
    /// the node is touched, so a failed repair (too few live sources, a
    /// concurrent failure mid-rebuild) leaves the node's contents and
    /// liveness exactly as they were — repairing a node can never lose data
    /// that was recoverable before the call.
    ///
    /// Takes the archive lock exclusively (repairs are rare; correctness of
    /// concurrent reads against a half-rebuilt node is not worth the
    /// complexity).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] if some entry has fewer than
    /// `k` other live blocks, or [`StoreError::InvalidNode`] if `node_id` is
    /// out of range.
    pub fn repair_node(&self, node_id: usize) -> Result<usize, StoreError> {
        let rebuilt = self.rebuild_node(node_id)?;
        self.alive.set(node_id, true);
        Ok(rebuilt)
    }

    /// The rebuild half of [`SecEngine::repair_node`]: stages and commits the
    /// node's contents but leaves its liveness untouched, so a cluster can
    /// rebuild the same physical node across every co-hosted object before
    /// reviving it once.
    pub(crate) fn rebuild_node(&self, node_id: usize) -> Result<usize, StoreError> {
        self.check_node(node_id)?;
        let archive = self.archive.write().expect("archive lock poisoned");
        let k = self.codec.code().k();
        let entries = archive.stored_entries();
        let mut staged: Vec<(SymbolKey, Vec<u8>)> = Vec::with_capacity(entries.len());
        for entry_idx in 0..entries.len() {
            let live: Vec<usize> = (0..self.nodes.len())
                .filter(|&p| p != node_id && self.alive.is_alive(p))
                .collect();
            if live.len() < k {
                return Err(StoreError::Unrecoverable { entry: entry_idx });
            }
            let codeword = {
                let guards = self.lock_nodes(&live[..k]);
                let mut shares: Vec<(usize, &[u8])> = Vec::with_capacity(k);
                for (position, guard) in live[..k].iter().copied().zip(guards.iter()) {
                    let key = SymbolKey {
                        entry: entry_idx,
                        position,
                    };
                    if !guard.touch(key) {
                        self.metrics.add_failed_read();
                        return Err(StoreError::Unrecoverable { entry: entry_idx });
                    }
                    self.metrics.add_symbol_reads(1);
                    shares.push((
                        position,
                        guard.peek_stored(key).expect("touched above").as_slice(),
                    ));
                }
                let object = self.codec.decode_blocks(&shares)?;
                self.codec.encode_blocks(&object)?
            };
            let key = SymbolKey {
                entry: entry_idx,
                position: node_id,
            };
            staged.push((key, codeword.shard(node_id).to_vec()));
        }
        // Commit: every block rebuilt, so replace the node's contents.
        let rebuilt = staged.len();
        {
            let mut node = self.nodes[node_id].write().expect("node lock poisoned");
            node.wipe();
            for (key, block) in staged {
                node.put(key, block);
                self.metrics.add_symbol_writes(1);
            }
        }
        self.metrics.add_repair();
        Ok(rebuilt)
    }

    /// A point-in-time snapshot of every counter the engine maintains.
    pub fn metrics_snapshot(&self) -> EngineMetrics {
        self.metrics_view(self.metrics.snapshot())
    }

    /// Resets the aggregate I/O counters and returns the final pre-reset
    /// metrics.
    ///
    /// Each counter is drained with an atomic swap, so across reset epochs
    /// every individual increment is reported exactly once — unlike a
    /// `metrics_snapshot()` + reset pair, which loses the increments that
    /// land between the two calls. The guarantee is per *counter*, not per
    /// operation: a retrieval in flight during the reset may have its
    /// `retrievals` increment drained into the returned snapshot while its
    /// `symbol_reads` land in the fresh epoch.
    ///
    /// **What survives a reset:** only the aggregate [`EngineMetrics::io`]
    /// counters are cleared. Per-node read counters (`node_reads`), cache
    /// statistics, node liveness and the version count keep accumulating;
    /// the returned snapshot reports their current values.
    pub fn reset_metrics(&self) -> EngineMetrics {
        self.metrics_view(self.metrics.take())
    }

    /// Completes an [`EngineMetrics`] around an already-captured `io` view.
    fn metrics_view(&self, io: IoMetrics) -> EngineMetrics {
        let node_reads = self
            .nodes
            .iter()
            .map(|node| node.read().expect("node lock poisoned").reads())
            .collect();
        EngineMetrics {
            io,
            node_reads,
            live_nodes: self.alive.live_count(),
            cache: self.cache.stats(),
            versions: self.len(),
        }
    }

    fn read_archive(&self) -> RwLockReadGuard<'_, ByteVersionedArchive> {
        self.archive.read().expect("archive lock poisoned")
    }

    /// Read-locks the given nodes in ascending id order (stable acquisition
    /// order keeps the lock graph acyclic alongside the one-at-a-time
    /// writers), returning guards in the caller's order.
    fn lock_nodes(&self, positions: &[usize]) -> Vec<RwLockReadGuard<'_, StorageNode<Vec<u8>>>> {
        let mut sorted: Vec<usize> = positions.to_vec();
        sorted.sort_unstable();
        let mut guards: Vec<(usize, RwLockReadGuard<'_, StorageNode<Vec<u8>>>)> = sorted
            .into_iter()
            .map(|p| (p, self.nodes[p].read().expect("node lock poisoned")))
            .collect();
        // Hand the guards back in plan order.
        positions
            .iter()
            .map(|&p| {
                let idx = guards
                    .iter()
                    .position(|(gp, _)| *gp == p)
                    .expect("every planned position was locked");
                guards.swap_remove(idx).1
            })
            .collect()
    }

    /// Reads and decodes one stored entry from live nodes under the SEC read
    /// plan, locking exactly the planned nodes.
    fn read_entry(
        &self,
        entry_idx: usize,
        payload: StoredPayload,
        shard_len: usize,
    ) -> Result<(usize, ByteShards), StoreError> {
        let Some(target) = read_target(payload) else {
            return Ok((0, ByteShards::zeroed(self.codec.code().k(), shard_len)));
        };
        // Lock-free planning: liveness is read from the atomics, no node
        // lock is held until the plan is fixed.
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&p| self.alive.is_alive(p))
            .collect();
        let plan = plan_read(self.codec.code(), &live, target)
            .map_err(|_| StoreError::Unrecoverable { entry: entry_idx })?;

        let guards = self.lock_nodes(&plan.nodes);
        let mut shares: Vec<(usize, &[u8])> = Vec::with_capacity(plan.nodes.len());
        for (&position, guard) in plan.nodes.iter().zip(guards.iter()) {
            let key = SymbolKey {
                entry: entry_idx,
                position,
            };
            // Liveness was snapshotted at plan time: the engine never flips
            // a node's *internal* alive flag (only the `alive` atomics), so
            // `touch` here can only fail for a genuinely absent block — a
            // concurrent `fail_node` cannot abort an admitted read.
            if !guard.touch(key) {
                self.metrics.add_failed_read();
                return Err(StoreError::Unrecoverable { entry: entry_idx });
            }
            self.metrics.add_symbol_reads(1);
            shares.push((
                position,
                guard.peek_stored(key).expect("touched above").as_slice(),
            ));
        }
        let decoded = decode_planned(&self.codec, plan.method, target, &shares)?;
        Ok((plan.io_reads, decoded))
    }
}

fn check_version(archive: &ByteVersionedArchive, l: usize) -> Result<(), StoreError> {
    if archive.is_empty() {
        return Err(StoreError::Versioning(VersioningError::EmptyArchive));
    }
    if l == 0 || l > archive.len() {
        return Err(StoreError::Versioning(VersioningError::NoSuchVersion {
            requested: l,
            available: archive.len(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;

    fn config(strategy: EncodingStrategy) -> ArchiveConfig {
        ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap()
    }

    /// Three versions of a 60-byte object (20-byte blocks): v2 edits one
    /// block (γ = 1), v3 edits two.
    fn versions() -> Vec<Vec<u8>> {
        let v1: Vec<u8> = (0..60).map(|i| (i * 7 + 13) as u8).collect();
        let mut v2 = v1.clone();
        v2[5] ^= 0x7C; // block 0
        let mut v3 = v2.clone();
        v3[25] ^= 0x11; // block 1
        v3[45] ^= 0x2F; // block 2
        vec![v1, v2, v3]
    }

    #[test]
    fn serves_every_strategy_and_matches_reference_reads() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let engine = SecEngine::new(config(strategy)).unwrap();
            let mut reference = ByteVersionedArchive::new(config(strategy)).unwrap();
            let vs = versions();
            engine.append_all(&vs).unwrap();
            reference.append_all(&vs).unwrap();
            for (l, expect) in vs.iter().enumerate() {
                let r = engine.get_version(l + 1).unwrap();
                let want = reference.retrieve_version(l + 1).unwrap();
                assert_eq!(&*r.data, expect, "{strategy} version {}", l + 1);
                assert_eq!(r.io_reads, want.io_reads, "{strategy} version {}", l + 1);
                assert!(!r.cached);
            }
            let p = engine.get_prefix(vs.len()).unwrap();
            let want = reference.retrieve_prefix(vs.len()).unwrap();
            assert_eq!(p.versions, want.versions, "{strategy} prefix");
            assert_eq!(p.io_reads, want.io_reads, "{strategy} prefix reads");
        }
    }

    #[test]
    fn with_shared_codec_shares_tables_and_rejects_mismatches() {
        let donor = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
        let codec = donor.codec().clone();
        let tables = codec.shared_tables();
        let before = Arc::strong_count(&tables);
        let engine =
            SecEngine::with_shared_codec(config(EncodingStrategy::BasicSec), &codec, 2).unwrap();
        // The engine (and its archive) hold handles to the donor's tables
        // allocation instead of materializing their own.
        assert!(Arc::strong_count(&tables) > before);
        let vs = versions();
        engine.append_all(&vs).unwrap();
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // A codec built for a different code is rejected, not adopted.
        let other = ArchiveConfig::new(4, 2, sec_erasure::GeneratorForm::NonSystematic, {
            EncodingStrategy::BasicSec
        })
        .unwrap();
        assert!(matches!(
            SecEngine::with_shared_codec(other, &codec, 0),
            Err(StoreError::Versioning(VersioningError::CodecMismatch { .. }))
        ));
    }

    #[test]
    fn from_archive_serves_preexisting_versions() {
        let mut archive = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        archive.append_all(&vs).unwrap();
        let engine = SecEngine::from_archive(archive);
        assert_eq!(engine.len(), 3);
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // Appends keep working after adoption.
        let mut v4 = vs[2].clone();
        v4[0] ^= 0xAA;
        engine.append_version(&v4).unwrap();
        assert_eq!(*engine.get_version(4).unwrap().data, v4);
    }

    #[test]
    fn survives_n_minus_k_failures_and_repairs() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        engine.fail_node(0).unwrap();
        engine.fail_node(3).unwrap();
        engine.fail_node(5).unwrap();
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // A fourth failure is fatal for full entries…
        engine.fail_node(1).unwrap();
        assert!(matches!(
            engine.get_version(1),
            Err(StoreError::Unrecoverable { .. })
        ));
        // …until a repair rebuilds a node from the survivors.
        engine.revive_node(1).unwrap();
        let rebuilt = engine.repair_node(0).unwrap();
        assert_eq!(rebuilt, 3);
        assert_eq!(*engine.get_version(3).unwrap().data, vs[2]);
        let m = engine.metrics_snapshot();
        assert_eq!(m.io.repairs, 1);
        // Nodes 3 and 5 are still failed; 0 was repaired and 1 revived.
        assert_eq!(m.live_nodes, 4);
    }

    #[test]
    fn failed_repair_preserves_recoverable_state() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        engine.fail_node(3).unwrap();
        engine.fail_node(4).unwrap();
        engine.fail_node(5).unwrap();
        // Recoverable from {0, 1, 2} — but repairing node 0 has only two
        // other live sources, so the repair must fail *without* wiping the
        // node it was asked to rebuild.
        assert!(matches!(
            engine.repair_node(0),
            Err(StoreError::Unrecoverable { .. })
        ));
        assert!(
            engine.is_node_alive(0).unwrap(),
            "failed repair must not change liveness"
        );
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(
                &*engine.get_version(l + 1).unwrap().data,
                expect,
                "version {} must survive the failed repair",
                l + 1
            );
        }
    }

    #[test]
    fn reversed_append_rewrites_the_latest_full_slot() {
        let engine = SecEngine::new(config(EncodingStrategy::ReversedSec)).unwrap();
        let vs = versions();
        for v in &vs {
            engine.append_version(v).unwrap();
            // After every append, every version so far must still be
            // servable — the full-copy slot moved and was rewritten.
            let l = engine.len();
            for (idx, expect) in vs[..l].iter().enumerate() {
                assert_eq!(&*engine.get_version(idx + 1).unwrap().data, expect);
            }
        }
        // Latest version costs exactly k block reads.
        assert_eq!(engine.get_version(3).unwrap().io_reads, 3);
    }

    #[test]
    fn cache_serves_hot_versions_without_reads() {
        let engine = SecEngine::with_cache(config(EncodingStrategy::BasicSec), 2).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        // Appends pre-warm the cache with the newest versions.
        let hot = engine.get_version(3).unwrap();
        assert!(hot.cached);
        assert_eq!(hot.io_reads, 0);
        assert_eq!(*hot.data, vs[2]);
        // An evicted version is decoded from the nodes, then cached.
        let cold = engine.get_version(1).unwrap();
        assert!(!cold.cached);
        assert!(cold.io_reads > 0);
        assert!(engine.get_version(1).unwrap().cached);
        let m = engine.metrics_snapshot();
        assert!(m.cache.hits >= 2);
        assert_eq!(m.versions, 3);
    }

    #[test]
    fn error_paths() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        assert!(matches!(
            engine.get_version(1),
            Err(StoreError::Versioning(VersioningError::EmptyArchive))
        ));
        let empty: Vec<Vec<u8>> = Vec::new();
        assert!(matches!(
            engine.append_all(&empty),
            Err(StoreError::Versioning(VersioningError::EmptyArchive))
        ));
        engine.append_version(&versions()[0]).unwrap();
        assert!(matches!(
            engine.get_version(0),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            engine.get_prefix(9),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            engine.append_version(&[1, 2]),
            Err(StoreError::Versioning(
                VersioningError::ObjectLengthMismatch { .. }
            ))
        ));
    }

    #[test]
    fn metrics_account_node_reads() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        engine.append_all(&versions()).unwrap();
        engine.reset_metrics();
        let r = engine.get_version(2).unwrap();
        let m = engine.metrics_snapshot();
        assert_eq!(m.io.symbol_reads as usize, r.io_reads);
        assert_eq!(m.io.retrievals, 1);
        assert_eq!(m.node_reads.iter().sum::<u64>() as usize, r.io_reads);
        assert_eq!(m.live_nodes, 6);
    }
}
