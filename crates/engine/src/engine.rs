//! The [`SecEngine`]: a sharded-lock serving layer over a byte archive and
//! its distributed storage nodes, generic over the paper's §IV placement
//! strategies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::ordered::{LockRank, OrderedReadGuard, OrderedRwLock};

/// Liveness of `n` storage nodes, outside every lock.
///
/// Kept in its own (crate-internal) type so a [`SecCluster`](crate::SecCluster)
/// shard can share one liveness array across the per-object engines that live
/// on the same physical nodes: failing a shard's node is then a single atomic
/// update observed by every object's read planner at once.
///
/// Each node's word packs `epoch << 1 | alive`: the failure *epoch* counts
/// how many times the node has failed. A repair snapshots the epoch before
/// rebuilding (see [`SecEngine::repair_node`]) and commits its concluding
/// revive with [`NodeLiveness::try_commit_repair`], which refuses if the node
/// failed again while the rebuild ran — the raced repair's blocks may miss
/// writes that landed after the new failure, so reviving would serve a node
/// the rebuild never saw.
#[derive(Debug)]
pub(crate) struct NodeLiveness {
    state: Vec<AtomicU64>,
}

/// Low bit of a liveness word: the node is currently alive.
const ALIVE_BIT: u64 = 1;

impl NodeLiveness {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            state: (0..n).map(|_| AtomicU64::new(ALIVE_BIT)).collect(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether node `node` is live (out-of-range reads as dead).
    pub(crate) fn is_alive(&self, node: usize) -> bool {
        debug_assert!(node < self.state.len(), "liveness query out of range");
        let Some(state) = self.state.get(node) else {
            return false;
        };
        // audit: atomic ok — Acquire pairs with the AcqRel updates in fail/revive/try_commit_repair
        state.load(Ordering::Acquire) & ALIVE_BIT != 0
    }

    /// Marks node `node` failed and bumps its failure epoch (even if it was
    /// already dead: each `fail` is a distinct failure event, and an
    /// in-flight repair must observe it).
    pub(crate) fn fail(&self, node: usize) {
        debug_assert!(node < self.state.len(), "liveness update out of range");
        if let Some(state) = self.state.get(node) {
            let bump = |v: u64| Some(((v >> 1) + 1) << 1);
            // audit: atomic ok — AcqRel: the epoch bump must be visible to a
            // racing repair's try_commit_repair, which reads with Acquire
            let _ = state.fetch_update(Ordering::AcqRel, Ordering::Acquire, bump);
        }
    }

    /// Marks node `node` live without touching its epoch (a crash-recovery
    /// revive: the node returns with whatever blocks it already held).
    pub(crate) fn revive(&self, node: usize) {
        debug_assert!(node < self.state.len(), "liveness update out of range");
        if let Some(state) = self.state.get(node) {
            // audit: atomic ok — AcqRel pairs with the Acquire loads in is_alive/epoch
            let _ = state.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v | ALIVE_BIT));
        }
    }

    /// The node's current failure epoch (out-of-range reads as 0).
    pub(crate) fn epoch(&self, node: usize) -> u64 {
        debug_assert!(node < self.state.len(), "epoch query out of range");
        // audit: atomic ok — Acquire pairs with the Release updates in fail
        self.state.get(node).map_or(0, |s| s.load(Ordering::Acquire) >> 1)
    }

    /// Commits a repair's concluding revive if and only if the node's epoch
    /// is still `observed_epoch` (no failure landed while the repair's
    /// rebuild ran). Returns whether the revive was committed.
    pub(crate) fn try_commit_repair(&self, node: usize, observed_epoch: u64) -> bool {
        debug_assert!(node < self.state.len(), "repair commit out of range");
        let Some(state) = self.state.get(node) else {
            return false;
        };
        // audit: atomic ok — AcqRel CAS: the commit must observe any epoch
        // bump from a racing fail, which updates with AcqRel
        let commit = state.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            (v >> 1 == observed_epoch).then_some(v | ALIVE_BIT)
        });
        commit.is_ok()
    }

    pub(crate) fn live_count(&self) -> usize {
        (0..self.len()).filter(|&i| self.is_alive(i)).count()
    }
}

use sec_erasure::read_plan::plan_read;
use sec_erasure::{ByteCodec, ByteShards};
use sec_store::fault;
use sec_store::node::{StorageNode, SymbolKey};
use sec_store::{AtomicIoMetrics, FailurePattern, IoMetrics, Placement, PlacementStrategy, StoreError};
use sec_versioning::object::VersionId;
use sec_versioning::walk::{
    decode_planned, read_target, trim_object, walk_prefix, walk_prefix_from_tail, walk_version,
    walk_version_from_base, walk_version_from_tail,
};
use sec_versioning::{
    ArchiveConfig, ByteVersionedArchive, CacheStats, DeltaCache, EncodingStrategy, StoredPayload,
    VersioningError,
};

/// Result of one engine retrieval.
#[derive(Debug, Clone)]
pub struct EngineRetrieval {
    /// The 1-based version number that was retrieved.
    pub version: usize,
    /// The reconstructed byte object. Shared so cache hits cost a refcount
    /// bump, not a copy.
    pub data: Arc<Vec<u8>>,
    /// Block reads spent serving this retrieval (0 on an exact cache hit,
    /// only the delta chain's reads when a cached base was extended).
    pub io_reads: usize,
    /// Whether the delta cache contributed to this retrieval — an exact hit
    /// or a nearest-base walk. When set, `io_reads` may undercut the
    /// uncached archive's accounting.
    pub cached: bool,
}

/// Result of retrieving the first `l` versions through the engine.
#[derive(Debug, Clone)]
pub struct EnginePrefix {
    /// The reconstructed versions `x_1, …, x_l` in order.
    pub versions: Vec<Vec<u8>>,
    /// Total block reads spent.
    pub io_reads: usize,
    /// Whether a cached Reversed-SEC tail anchored the backward walk (the
    /// forward strategies never consult the cache for prefix reads).
    pub cached: bool,
}

/// A point-in-time view of everything the engine counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Aggregate I/O counters (block reads/writes, retrievals, repairs).
    pub io: IoMetrics,
    /// Reads served by each storage node, by placement node id (length
    /// [`EngineMetrics::nodes`]).
    pub node_reads: Vec<u64>,
    /// Number of currently live nodes.
    pub live_nodes: usize,
    /// Total number of storage nodes the placement currently addresses —
    /// `n` under colocated placement, `n · entries` under dispersed.
    pub nodes: usize,
    /// Delta-cache statistics (exact hits, nearest-base hits, misses).
    pub cache: CacheStats,
    /// Number of versions appended so far.
    pub versions: usize,
    /// Stored entries read and XOR-applied on top of cached bases across
    /// every nearest-base retrieval served so far.
    pub deltas_applied: u64,
    /// Full versions the archive's [`CheckpointPolicy`](sec_versioning::CheckpointPolicy)
    /// forced into the chain in place of deltas.
    pub checkpoints_written: u64,
}

/// One contiguous group of `n` storage nodes plus their liveness flags: the
/// whole node set under colocated placement, one entry's private node set
/// under dispersed placement. Both handles are `Arc`s so a reader can fetch
/// a slab from the directory, release the directory lock, and keep reading
/// blocks while an append grows the directory behind it.
#[derive(Debug, Clone)]
struct NodeSlab {
    nodes: Arc<Vec<OrderedRwLock<StorageNode<Vec<u8>>>>>,
    alive: Arc<NodeLiveness>,
}

impl NodeSlab {
    /// A slab of `n` empty nodes whose global ids start at `first_id`, with
    /// the given (possibly externally shared) liveness flags.
    fn fresh(n: usize, first_id: usize, alive: Arc<NodeLiveness>) -> Self {
        debug_assert_eq!(alive.len(), n);
        Self {
            nodes: Arc::new(
                (first_id..first_id + n)
                    .map(StorageNode::new)
                    .map(|node| OrderedRwLock::new(LockRank::Node, node))
                    .collect(),
            ),
            alive,
        }
    }
}

/// A concurrent SEC serving engine.
///
/// # Locking model
///
/// The engine holds three kinds of shared state, ordered so no lock is ever
/// acquired while holding a later-ordered one in reverse. Every lock is an
/// [`OrderedRwLock`] carrying its [`LockRank`], so debug builds assert the
/// hierarchy at runtime and `sec-audit` checks it statically; the documented
/// order (with the cluster object map innermost) lives in `audit.toml` and
/// `docs/INVARIANTS.md`.
///
/// 1. **Archive** (`OrderedRwLock<ByteVersionedArchive>`) — entry metadata
///    (payloads, sparsity levels, shard lengths) and the plaintext tail used
///    for delta computation. Readers take it shared just long enough to
///    snapshot the entry metadata, then release it for the append-only
///    strategies (Basic/Optimized/NonDifferential) — so an in-flight
///    `append_version` (which takes it exclusively) does not block the block
///    reads of concurrent retrievals. Reversed SEC rewrites its trailing
///    full-copy slot in place on append, so its readers hold the lock for
///    the whole walk.
/// 2. **Slab directory** (`OrderedRwLock<Vec<NodeSlab>>`) — the placement-driven
///    node map. Under colocated placement it holds one slab of `n` nodes;
///    under dispersed placement one slab of `n` fresh nodes *per stored
///    entry*, appended on `append_version`. The directory lock is held only
///    long enough to clone a slab's `Arc` handles (readers) or push new
///    slabs (appends) — never across a block read — so directory growth
///    does not block in-flight retrievals.
/// 3. **Storage nodes** (`OrderedRwLock<StorageNode<Vec<u8>>>`, inside each slab) —
///    one lock per node, so a `2γ`-read sparse retrieval locks only the
///    `2γ` nodes its plan names, and writers (append, repair) lock one node
///    at a time.
/// 4. **Liveness** (one atomic array per slab) — outside every node lock.
///    Read planning is lock-free once the slab is in hand:
///    [`SecEngine::fail_node`] is a single atomic store and never blocks
///    in-flight retrievals.
///
/// Node addressing consults the engine's [`Placement`] rather than assuming
/// `node i ↔ codeword position i`: under [`PlacementStrategy::Dispersed`]
/// node `e·n + i` is position `i` of entry `e`'s private node set, so
/// failing it degrades only entry `e`. The placement grows monotonically on
/// append ([`Placement::grow_to`]) under the archive write lock.
///
/// Counters ([`AtomicIoMetrics`], per-node read counts, cache statistics)
/// are atomics and never require exclusive access.
///
/// Retrieval results are linearized at the archive read lock: a reader sees
/// either all of an append or none of it, and liveness is snapshotted at
/// plan time (a node failing mid-read still serves blocks it already held —
/// the crash model, where data survives on disk).
#[derive(Debug)]
pub struct SecEngine {
    archive: OrderedRwLock<ByteVersionedArchive>,
    codec: ByteCodec,
    placement: OrderedRwLock<Placement>,
    slabs: OrderedRwLock<Vec<NodeSlab>>,
    metrics: AtomicIoMetrics,
    cache: Arc<DeltaCache<Vec<u8>>>,
    /// Key this engine's decoded versions are filed under in the (possibly
    /// shared) delta cache — 0 standalone, the cluster object id otherwise.
    cache_object: u64,
    /// Stored entries XOR-applied on top of cached bases, for
    /// [`EngineMetrics::deltas_applied`].
    deltas_applied: AtomicU64,
}

impl SecEngine {
    /// Creates an empty engine for the given archive configuration, with the
    /// version cache disabled (every read hits the nodes — the mode whose
    /// read accounting is bit-compatible with the reference archive).
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn new(config: ArchiveConfig) -> Result<Self, StoreError> {
        Self::with_cache(config, 0)
    }

    /// Creates an empty engine whose delta cache holds up to
    /// `cache_capacity` decoded versions (0 disables caching).
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn with_cache(config: ArchiveConfig, cache_capacity: usize) -> Result<Self, StoreError> {
        Self::with_placement(config, PlacementStrategy::Colocated, cache_capacity)
    }

    /// Creates an empty engine under the given placement strategy (§IV of
    /// the paper). [`PlacementStrategy::Colocated`] is the default layout:
    /// `n` nodes, node `i` holding block position `i` of every entry.
    /// [`PlacementStrategy::Dispersed`] gives every stored entry its own
    /// fresh set of `n` nodes (appended as versions arrive), so a node
    /// failure degrades exactly one entry.
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn with_placement(
        config: ArchiveConfig,
        placement: PlacementStrategy,
        cache_capacity: usize,
    ) -> Result<Self, StoreError> {
        let archive = ByteVersionedArchive::new(config)?;
        Ok(Self::from_layout(archive, cache_capacity, placement, None))
    }

    /// Creates an empty engine that reuses an existing codec (its code and
    /// `GF(2^8)` multiplication tables sit behind `Arc`s) instead of building
    /// one — the constructor a multi-engine deployment uses so the tables
    /// exist once per process, not once per engine.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Versioning`] when the codec's code does not
    /// match the configuration's `(n, k, form)`.
    pub fn with_shared_codec(
        config: ArchiveConfig,
        codec: &ByteCodec,
        cache_capacity: usize,
    ) -> Result<Self, StoreError> {
        let archive = ByteVersionedArchive::with_codec(config, codec.clone())?;
        Ok(Self::from_archive_with_cache(archive, cache_capacity))
    }

    /// Creates an empty engine that serves reads through an externally owned
    /// [`DeltaCache`], filing its decoded versions under `cache_object` — the
    /// constructor a multi-engine deployment uses to pool one cache budget
    /// across objects. The cache keys every entry by `(object, version)`, so
    /// engines sharing a cache must use distinct object keys.
    ///
    /// # Errors
    ///
    /// Returns a versioning error when the configured code cannot be built
    /// over `GF(2^8)`.
    pub fn with_shared_cache(
        config: ArchiveConfig,
        placement: PlacementStrategy,
        cache: Arc<DeltaCache<Vec<u8>>>,
        cache_object: u64,
    ) -> Result<Self, StoreError> {
        let archive = ByteVersionedArchive::new(config)?;
        Ok(Self::from_layout_with_cache(
            archive,
            cache,
            cache_object,
            placement,
            None,
        ))
    }

    /// Wraps an existing archive, distributing its coded blocks across the
    /// engine's nodes (colocated placement: node `i` holds block position
    /// `i` of every stored entry, the placement the paper shows maximizes
    /// whole-archive resilience).
    pub fn from_archive(archive: ByteVersionedArchive) -> Self {
        Self::from_archive_with_cache(archive, 0)
    }

    /// Like [`SecEngine::from_archive`] with a version cache of the given
    /// capacity.
    pub fn from_archive_with_cache(archive: ByteVersionedArchive, cache_capacity: usize) -> Self {
        Self::from_layout(archive, cache_capacity, PlacementStrategy::Colocated, None)
    }

    /// Wraps an existing archive under an explicit placement strategy; under
    /// [`PlacementStrategy::Dispersed`] every already-stored entry gets its
    /// own slab of `n` fresh nodes.
    pub fn from_archive_with_placement(
        archive: ByteVersionedArchive,
        placement: PlacementStrategy,
        cache_capacity: usize,
    ) -> Self {
        Self::from_layout(archive, cache_capacity, placement, None)
    }

    /// The one constructor every other one funnels into: builds the
    /// placement and the slab directory for the archive's stored entries
    /// and writes every coded block to its node.
    ///
    /// `shared_liveness` is the cluster hook (colocated only): every
    /// per-object engine of one shard shares the shard's liveness array, so
    /// failing a shard node is one atomic store observed by every
    /// co-hosted read planner. Dispersed engines own their node space.
    pub(crate) fn from_layout(
        archive: ByteVersionedArchive,
        cache_capacity: usize,
        strategy: PlacementStrategy,
        shared_liveness: Option<Arc<NodeLiveness>>,
    ) -> Self {
        Self::from_layout_with_cache(
            archive,
            Arc::new(DeltaCache::new(cache_capacity)),
            0,
            strategy,
            shared_liveness,
        )
    }

    /// [`SecEngine::from_layout`] with an explicit (possibly shared) delta
    /// cache and the object key this engine files entries under.
    pub(crate) fn from_layout_with_cache(
        archive: ByteVersionedArchive,
        cache: Arc<DeltaCache<Vec<u8>>>,
        cache_object: u64,
        strategy: PlacementStrategy,
        shared_liveness: Option<Arc<NodeLiveness>>,
    ) -> Self {
        let n = archive.code().n();
        let codec = archive.codec().clone();
        let metrics = AtomicIoMetrics::new();
        let entries = archive.stored_entries();
        let placement = Placement::new(strategy, n, entries.len());
        let slabs: Vec<NodeSlab> = match strategy {
            PlacementStrategy::Colocated => {
                let alive = shared_liveness.unwrap_or_else(|| Arc::new(NodeLiveness::new(n)));
                debug_assert_eq!(alive.len(), n);
                vec![NodeSlab::fresh(n, 0, alive)]
            }
            PlacementStrategy::Dispersed => {
                debug_assert!(
                    shared_liveness.is_none(),
                    "dispersed engines own their node space"
                );
                (0..entries.len())
                    .map(|entry| NodeSlab::fresh(n, entry * n, Arc::new(NodeLiveness::new(n))))
                    .collect()
            }
        };
        for (entry_idx, entry) in entries.iter().enumerate() {
            let slab = match strategy {
                // audit: panic ok — colocated placement always builds exactly one slab
                PlacementStrategy::Colocated => &slabs[0],
                // audit: panic ok — dispersed placement builds one slab per entry
                PlacementStrategy::Dispersed => &slabs[entry_idx],
            };
            for position in 0..entry.shards.shard_count() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                // audit: panic ok — `position < shard_count = n`, and every slab holds n nodes
                let mut node = slab.nodes[position].write();
                node.put(key, entry.shards.shard(position).to_vec());
                metrics.add_symbol_writes(1);
            }
        }
        Self {
            archive: OrderedRwLock::new(LockRank::Archive, archive),
            codec,
            placement: OrderedRwLock::new(LockRank::Placement, placement),
            slabs: OrderedRwLock::new(LockRank::Directory, slabs),
            metrics,
            cache,
            cache_object,
            deltas_applied: AtomicU64::new(0),
        }
    }

    /// The archive configuration.
    pub fn config(&self) -> ArchiveConfig {
        self.read_archive().config()
    }

    /// The node placement currently in effect. Under dispersed placement the
    /// covered entry count (and with it [`Placement::node_count`]) grows as
    /// versions are appended.
    pub fn placement(&self) -> Placement {
        *self.placement.read()
    }

    /// Total number of storage nodes the placement currently addresses:
    /// `n` under colocated placement, `n · entries` under dispersed.
    pub fn node_count(&self) -> usize {
        self.placement().node_count()
    }

    /// Number of versions appended so far.
    pub fn len(&self) -> usize {
        self.read_archive().len()
    }

    /// `true` when no version has been appended.
    pub fn is_empty(&self) -> bool {
        self.read_archive().is_empty()
    }

    /// Resolves a placement node id to its `(slab, position)` address.
    ///
    /// Under colocated placement the single slab holds nodes `0..n`; under
    /// dispersed placement node `e·n + i` is position `i` of entry `e`'s
    /// slab. The bound is the placement's *current* node count, so ids for
    /// not-yet-appended dispersed entries are [`StoreError::InvalidNode`].
    fn locate(&self, node: usize) -> Result<(usize, usize), StoreError> {
        let placement = self.placement();
        let total = placement.node_count();
        if node >= total {
            return Err(StoreError::InvalidNode { node, n: total });
        }
        Ok(match placement.strategy() {
            PlacementStrategy::Colocated => (0, node),
            PlacementStrategy::Dispersed => {
                let n = placement.codeword_len();
                (node / n, node % n)
            }
        })
    }

    /// Clones the `Arc` handles of slab `idx`, holding the directory lock
    /// only for the fetch.
    fn slab(&self, idx: usize) -> NodeSlab {
        // audit: panic ok — private helper; callers pass a directory index they just resolved
        self.slabs.read()[idx].clone()
    }

    /// Resolves a node id straight to its slab handles and in-slab position
    /// — one placement read and one directory read per logical lookup.
    fn locate_slab(&self, node: usize) -> Result<(NodeSlab, usize), StoreError> {
        let (slab_idx, position) = self.locate(node)?;
        Ok((self.slab(slab_idx), position))
    }

    /// The slab hosting `entry`'s coded blocks.
    fn slab_for_entry(&self, entry: usize) -> NodeSlab {
        let idx = match self.placement().strategy() {
            PlacementStrategy::Colocated => 0,
            PlacementStrategy::Dispersed => entry,
        };
        self.slab(idx)
    }

    /// Whether node `node` is currently live. Lock-free.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range — a bad
    /// node id is an error the caller handles, never a process abort.
    pub fn is_node_alive(&self, node: usize) -> Result<bool, StoreError> {
        let (slab, position) = self.locate_slab(node)?;
        Ok(slab.alive.is_alive(position))
    }

    /// Marks a node failed. Lock-free: in-flight retrievals that already
    /// planned around the node finish normally (the crash model — blocks
    /// survive on disk), later plans exclude it. Under dispersed placement
    /// the node hosts exactly one entry, so only that entry degrades.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range, so a
    /// typo in a failure-injection script is a handled error instead of a
    /// panic inside the serving process.
    pub fn fail_node(&self, node: usize) -> Result<(), StoreError> {
        let (slab, position) = self.locate_slab(node)?;
        slab.alive.fail(position);
        Ok(())
    }

    /// Revives a node, keeping whatever blocks it held (crash recovery; use
    /// [`SecEngine::repair_node`] after data loss).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidNode`] if `node` is out of range.
    pub fn revive_node(&self, node: usize) -> Result<(), StoreError> {
        let (slab, position) = self.locate_slab(node)?;
        slab.alive.revive(position);
        Ok(())
    }

    /// Applies a failure pattern across the node space, indexed by placement
    /// node id (so under dispersed placement index `e·n + i` addresses
    /// position `i` of entry `e`'s node set).
    ///
    /// **Overwrite semantics:** within the pattern's length the pattern *is*
    /// the new liveness — covered nodes the pattern marks alive are revived
    /// even if they were failed before the call (so replaying a sequence of
    /// sampled patterns always leaves the cluster in the last pattern's
    /// state). Nodes beyond the pattern's length keep their liveness. Use
    /// [`SecEngine::apply_pattern_additive`] to layer failures instead.
    pub fn apply_pattern(&self, pattern: &FailurePattern) {
        let slabs = self.slabs.read();
        let mut base = 0usize;
        for slab in slabs.iter() {
            for position in 0..slab.alive.len() {
                let idx = base + position;
                if pattern.is_failed(idx) {
                    slab.alive.fail(position);
                } else if idx < pattern.len() {
                    slab.alive.revive(position);
                }
            }
            base += slab.alive.len();
        }
    }

    /// Fails every node the pattern marks failed and leaves all other nodes'
    /// liveness untouched — the additive counterpart of
    /// [`SecEngine::apply_pattern`], for tests and experiments that layer
    /// patterns on top of already-injected failures.
    pub fn apply_pattern_additive(&self, pattern: &FailurePattern) {
        let slabs = self.slabs.read();
        let mut base = 0usize;
        for slab in slabs.iter() {
            for position in 0..slab.alive.len() {
                if pattern.is_failed(base + position) {
                    slab.alive.fail(position);
                }
            }
            base += slab.alive.len();
        }
    }

    /// Grows the placement — and, under dispersed placement, the slab
    /// directory — to cover `entries` stored entries. Called with the
    /// archive write lock held, so growth is atomic with the append that
    /// caused it. The directory's write lock is held only for the pushes:
    /// in-flight readers work off `Arc` handles to the slabs of entries
    /// that already existed, so appending slabs never blocks their block
    /// reads.
    fn grow_to_entries(&self, entries: usize) {
        let mut placement = self.placement.write();
        placement.grow_to(entries);
        if placement.strategy() == PlacementStrategy::Dispersed {
            let n = placement.codeword_len();
            let mut slabs = self.slabs.write();
            while slabs.len() < placement.entries() {
                let first_id = slabs.len() * n;
                slabs.push(NodeSlab::fresh(n, first_id, Arc::new(NodeLiveness::new(n))));
            }
        }
    }

    /// Appends the next version, encoding it under the configured strategy
    /// and writing every new coded block to its node. Under dispersed
    /// placement each new stored entry first gets its own fresh slab of `n`
    /// live nodes.
    ///
    /// Takes the archive lock exclusively; concurrent readers observe either
    /// the archive before the append or after it, never an intermediate
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Versioning`] for a length mismatch or encoding
    /// failure.
    pub fn append_version(&self, object: &[u8]) -> Result<VersionId, StoreError> {
        let mut archive = self.archive.write();
        let stored_before = archive.stored_entry_count();
        let id = archive.append_version(object)?;
        // Reversed SEC rewrites the trailing full copy's slot (it becomes
        // the new delta) in addition to appending; every other strategy only
        // appends one entry. The rewritten slot keeps its node set — entry
        // indices never move, so placement addressing stays stable.
        let start = match archive.config().strategy() {
            EncodingStrategy::ReversedSec => stored_before.saturating_sub(1),
            _ => stored_before,
        };
        let entries = archive.stored_entries();
        // Admit the new entries into the placement (and their slabs into the
        // directory) before any block lands.
        self.grow_to_entries(entries.len());
        fault::reached("engine::append::slab_grown");
        for (entry_idx, entry) in entries.iter().enumerate().skip(start) {
            let slab = self.slab_for_entry(entry_idx);
            for position in 0..entry.shards.shard_count() {
                let key = SymbolKey {
                    entry: entry_idx,
                    position,
                };
                // audit: panic ok — `position < shard_count = n`, and every slab holds n nodes
                let mut node = slab.nodes[position].write();
                node.put(key, entry.shards.shard(position).to_vec());
                self.metrics.add_symbol_writes(1);
            }
        }
        // Pre-warm only when a cache exists; a disabled cache must not cost
        // an object copy per append. Appends never invalidate: decoded
        // versions are immutable under every strategy (Reversed SEC rewrites
        // only its *encoded* full-copy slot, and that entry carries the new
        // version's id).
        if self.cache.capacity() > 0 {
            self.cache.insert(self.cache_object, id.0, object.to_vec());
        }
        Ok(id)
    }

    /// Appends every version of a sequence in order, returning the id of the
    /// last one.
    ///
    /// # Errors
    ///
    /// Propagates the first append error; versions appended before it remain
    /// served. An empty sequence on an empty engine yields
    /// [`VersioningError::EmptyArchive`].
    pub fn append_all<B: AsRef<[u8]>>(&self, versions: &[B]) -> Result<VersionId, StoreError> {
        let mut last = None;
        for version in versions {
            last = Some(self.append_version(version.as_ref())?);
        }
        match last {
            Some(id) => Ok(id),
            None => {
                if self.is_empty() {
                    Err(StoreError::Versioning(VersioningError::EmptyArchive))
                } else {
                    Ok(VersionId(self.len()))
                }
            }
        }
    }

    /// Retrieves version `l` (1-based), reading blocks only from live nodes
    /// under the SEC read plan (`2γ` block reads per exploitable delta, `k`
    /// otherwise). The delta cache is consulted for the nearest usable base
    /// first: an exact hit costs zero reads, and a cached neighbour lets the
    /// walk pay only for the deltas between it and `l` instead of rewinding
    /// to a stored full version.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] when too many nodes have
    /// failed, [`StoreError::Versioning`] for an invalid `l`, or
    /// [`StoreError::Code`] for a corrupt block.
    pub fn get_version(&self, l: usize) -> Result<EngineRetrieval, StoreError> {
        let archive = self.read_archive();
        check_version(&archive, l)?;
        self.metrics.add_retrieval();
        // Probe the cache only for a validated version, so an out-of-range
        // request can never register as a (phantom) cache miss. Each
        // strategy asks for the nearest base its delta chain can extend:
        // Basic/Optimized walk forward from a version ≤ l, Reversed walks
        // backward from a version ≥ l, and NonDifferential (no deltas) can
        // use only an exact copy.
        let base = match archive.config().strategy() {
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                self.cache.nearest_at_most(self.cache_object, l)
            }
            EncodingStrategy::ReversedSec => self.cache.nearest_at_least(self.cache_object, l),
            EncodingStrategy::NonDifferential => {
                self.cache.get(self.cache_object, l).map(|data| (l, data))
            }
        };
        if let Some((base_version, data)) = base {
            if base_version == l {
                return Ok(EngineRetrieval {
                    version: l,
                    data,
                    io_reads: 0,
                    cached: true,
                });
            }
            return self.get_version_from_base(archive, l, base_version, &data);
        }
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        let out = walk_version(
            strategy,
            entries.len(),
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| entries[idx].0,
            l,
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
        )?;
        let data = self
            .cache
            .insert(self.cache_object, l, trim_object(&out.shards, object_len));
        Ok(EngineRetrieval {
            version: l,
            data,
            io_reads: out.io_reads,
            cached: false,
        })
    }

    /// Retrieves a batch of versions under **one** archive lock acquisition
    /// and **one** entry-metadata snapshot, instead of re-locking and
    /// re-snapshotting per request the way a loop over
    /// [`SecEngine::get_version`] would.
    ///
    /// Requests are served in order against the shared snapshot, and each
    /// result lands in the delta cache before the next request probes it —
    /// so a batch of identical versions decodes once and serves the rest as
    /// exact hits, and a batch of neighbouring versions pays only the delta
    /// chain between them. This is the engine half of the network server's
    /// pipelined `GET` dispatch.
    ///
    /// Per-request outcomes are independent: one invalid version yields an
    /// `Err` in its slot without failing the rest of the batch.
    pub fn get_versions(&self, versions: &[usize]) -> Vec<Result<EngineRetrieval, StoreError>> {
        if versions.is_empty() {
            return Vec::new();
        }
        let archive = self.read_archive();
        let checks: Vec<Option<StoreError>> = versions
            .iter()
            .map(|&l| check_version(&archive, l).err())
            .collect();
        // One snapshot serves every valid request in the batch; for Reversed
        // SEC the returned pin keeps the archive read lock held until the
        // whole batch is served, exactly as long as the snapshot is in use.
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        versions
            .iter()
            .zip(checks)
            .map(|(&l, check)| match check {
                Some(e) => Err(e),
                None => {
                    self.metrics.add_retrieval();
                    self.serve_from_snapshot(strategy, object_len, &entries, l)
                }
            })
            .collect()
    }

    /// Serves one already-validated version against a snapshot taken by
    /// [`SecEngine::snapshot_entries`]: the same cache-probe / walk-from-base
    /// / full-walk ladder as [`SecEngine::get_version`], minus the archive
    /// lock acquisition.
    fn serve_from_snapshot(
        &self,
        strategy: EncodingStrategy,
        object_len: usize,
        entries: &[(StoredPayload, usize)],
        l: usize,
    ) -> Result<EngineRetrieval, StoreError> {
        let base = match strategy {
            EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
                self.cache.nearest_at_most(self.cache_object, l)
            }
            EncodingStrategy::ReversedSec => self.cache.nearest_at_least(self.cache_object, l),
            EncodingStrategy::NonDifferential => {
                self.cache.get(self.cache_object, l).map(|data| (l, data))
            }
        };
        if let Some((base_version, data)) = base {
            if base_version == l {
                return Ok(EngineRetrieval {
                    version: l,
                    data,
                    io_reads: 0,
                    cached: true,
                });
            }
            let k = self.codec.code().k();
            let base_shards = ByteShards::from_flat(&data, k);
            let (out, base_used) = match strategy {
                EncodingStrategy::ReversedSec => walk_version_from_tail(
                    l,
                    base_version,
                    base_shards,
                    // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                    |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
                )
                .map(|out| (out, true))?,
                _ => walk_version_from_base(
                    strategy,
                    entries.len(),
                    // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                    |idx| entries[idx].0,
                    l,
                    base_version,
                    base_shards,
                    // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                    |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
                )?,
            };
            if base_used {
                let applied = out.entries_read as u64;
                // audit: atomic ok — statistic
                self.deltas_applied.fetch_add(applied, Ordering::Relaxed);
            }
            let data = self
                .cache
                .insert(self.cache_object, l, trim_object(&out.shards, object_len));
            return Ok(EngineRetrieval {
                version: l,
                data,
                io_reads: out.io_reads,
                cached: base_used,
            });
        }
        let out = walk_version(
            strategy,
            entries.len(),
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| entries[idx].0,
            l,
            // audit: panic ok — `idx` comes from walk_version, which stays within 0..entries.len()
            |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
        )?;
        let data = self
            .cache
            .insert(self.cache_object, l, trim_object(&out.shards, object_len));
        Ok(EngineRetrieval {
            version: l,
            data,
            io_reads: out.io_reads,
            cached: false,
        })
    }

    /// Serves version `l` by extending a cached decoded neighbour: forward
    /// over the deltas `base_version + 1..=l` (Basic/Optimized), or backward
    /// from a newer tail by un-applying `l + 1..=base_version` (Reversed).
    fn get_version_from_base(
        &self,
        archive: OrderedReadGuard<'_, ByteVersionedArchive>,
        l: usize,
        base_version: usize,
        base: &[u8],
    ) -> Result<EngineRetrieval, StoreError> {
        let k = self.codec.code().k();
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        let base_shards = ByteShards::from_flat(base, k);
        let (out, base_used) = match strategy {
            EncodingStrategy::ReversedSec => walk_version_from_tail(
                l,
                base_version,
                base_shards,
                // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
            )
            .map(|out| (out, true))?,
            _ => walk_version_from_base(
                strategy,
                entries.len(),
                // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                |idx| entries[idx].0,
                l,
                base_version,
                base_shards,
                // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
            )?,
        };
        if base_used {
            let applied = out.entries_read as u64;
            // audit: atomic ok — statistic
            self.deltas_applied.fetch_add(applied, Ordering::Relaxed);
        }
        let data = self
            .cache
            .insert(self.cache_object, l, trim_object(&out.shards, object_len));
        Ok(EngineRetrieval {
            version: l,
            data,
            io_reads: out.io_reads,
            cached: base_used,
        })
    }

    /// Retrieves the first `l` versions in order.
    ///
    /// Only Reversed SEC consults the delta cache here: its backward chain
    /// can anchor the whole prefix walk on any cached tail ≥ `l`, saving the
    /// full-copy read. The forward strategies read every stored entry below
    /// `l` regardless, so a probe would be bookkeeping with no read savings
    /// — their accounting stays bit-compatible with the reference archive.
    ///
    /// # Errors
    ///
    /// As for [`SecEngine::get_version`].
    pub fn get_prefix(&self, l: usize) -> Result<EnginePrefix, StoreError> {
        let archive = self.read_archive();
        check_version(&archive, l)?;
        self.metrics.add_retrieval();
        if archive.config().strategy() == EncodingStrategy::ReversedSec {
            if let Some((tail_version, data)) = self.cache.nearest_at_least(self.cache_object, l) {
                let k = self.codec.code().k();
                let (_, object_len, entries, _pin) = self.snapshot_entries(archive);
                let tail_shards = ByteShards::from_flat(&data, k);
                let out = walk_prefix_from_tail(
                    l,
                    object_len,
                    tail_version,
                    tail_shards,
                    // audit: panic ok — `idx` comes from the walk, which stays within 0..entries.len()
                    |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
                )?;
                let applied = out.entries_read as u64;
                // audit: atomic ok — statistic
                self.deltas_applied.fetch_add(applied, Ordering::Relaxed);
                return Ok(EnginePrefix {
                    versions: out.versions,
                    io_reads: out.io_reads,
                    cached: true,
                });
            }
        }
        let (strategy, object_len, entries, _pin) = self.snapshot_entries(archive);
        let out = walk_prefix(
            strategy,
            entries.len(),
            // audit: panic ok — `idx` comes from walk_prefix, which stays within 0..entries.len()
            |idx| entries[idx].0,
            l,
            object_len,
            // audit: panic ok — `idx` comes from walk_prefix, which stays within 0..entries.len()
            |idx| self.read_entry(idx, entries[idx].0, entries[idx].1),
        )?;
        Ok(EnginePrefix {
            versions: out.versions,
            io_reads: out.io_reads,
            cached: false,
        })
    }

    /// Drops every cached decoded version. Statistics and capacity are
    /// untouched; with a shared cache this clears *all* objects' entries.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Snapshots the entry metadata a walk needs — `(payload, shard_len)`
    /// per stored entry — and releases the archive read lock when the
    /// strategy allows it.
    ///
    /// Basic/Optimized/NonDifferential archives are append-only: existing
    /// entries and their node blocks never change, so once the metadata is
    /// snapshotted the walk can run without the archive lock and a
    /// concurrent `append_version` no longer blocks readers (this is what
    /// makes the per-node lock sharding real). Reversed SEC rewrites the
    /// trailing full-copy slot in place on every append, so its readers
    /// keep the lock to pin that slot.
    #[allow(clippy::type_complexity)]
    fn snapshot_entries<'a>(
        &self,
        archive: OrderedReadGuard<'a, ByteVersionedArchive>,
    ) -> (
        EncodingStrategy,
        usize,
        Vec<(StoredPayload, usize)>,
        Option<OrderedReadGuard<'a, ByteVersionedArchive>>,
    ) {
        let strategy = archive.config().strategy();
        let object_len = archive.object_len().unwrap_or(0);
        let entries: Vec<(StoredPayload, usize)> = archive
            .stored_entries()
            .iter()
            .map(|e| (e.payload, e.shards.shard_len()))
            .collect();
        let pin = match strategy {
            EncodingStrategy::ReversedSec => Some(archive),
            _ => None,
        };
        (strategy, object_len, entries, pin)
    }

    /// Repairs a node after data loss: rebuilds every block it should hold
    /// from `k` live blocks per entry, then atomically replaces the node's
    /// contents and revives it. Returns the number of blocks rebuilt.
    ///
    /// The rebuild is staged: all blocks are decoded into a buffer *before*
    /// the node is touched, so a failed repair (too few live sources, a
    /// concurrent failure mid-rebuild) leaves the node's contents and
    /// liveness exactly as they were — repairing a node can never lose data
    /// that was recoverable before the call.
    ///
    /// Takes the archive lock exclusively (repairs are rare; correctness of
    /// concurrent reads against a half-rebuilt node is not worth the
    /// complexity).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Unrecoverable`] if some entry has fewer than
    /// `k` other live blocks, [`StoreError::RepairRaced`] if the node failed
    /// again while the rebuild ran (the rebuilt blocks may miss writes that
    /// landed after the new failure — re-run the repair), or
    /// [`StoreError::InvalidNode`] if `node_id` is out of range.
    pub fn repair_node(&self, node_id: usize) -> Result<usize, StoreError> {
        let (slab_idx, position) = self.locate(node_id)?;
        let slab = self.slab(slab_idx);
        let epoch = slab.alive.epoch(position);
        let rebuilt = self.rebuild_at(&slab, slab_idx, position)?;
        fault::reached("engine::repair::window");
        if !slab.alive.try_commit_repair(position, epoch) {
            return Err(StoreError::RepairRaced { node: node_id });
        }
        Ok(rebuilt)
    }

    /// The rebuild half of [`SecEngine::repair_node`]: stages and commits the
    /// node's contents but leaves its liveness untouched, so a cluster can
    /// rebuild the same physical node across every co-hosted object before
    /// reviving it once.
    pub(crate) fn rebuild_node(&self, node_id: usize) -> Result<usize, StoreError> {
        let (slab_idx, position) = self.locate(node_id)?;
        let slab = self.slab(slab_idx);
        self.rebuild_at(&slab, slab_idx, position)
    }

    /// Rebuilds the node at an already-resolved slab address.
    ///
    /// A colocated node hosts one block of every stored entry; a dispersed
    /// node hosts exactly one block of the single entry its slab belongs to,
    /// so a dispersed rebuild decodes one entry, not the whole archive.
    fn rebuild_at(
        &self,
        slab: &NodeSlab,
        slab_idx: usize,
        position: usize,
    ) -> Result<usize, StoreError> {
        let archive = self.archive.write();
        let k = self.codec.code().k();
        let n = self.codec.code().n();
        let entries = archive.stored_entries();
        let hosted: Vec<usize> = match self.placement().strategy() {
            PlacementStrategy::Colocated => (0..entries.len()).collect(),
            PlacementStrategy::Dispersed => vec![slab_idx],
        };
        let mut staged: Vec<(SymbolKey, Vec<u8>)> = Vec::with_capacity(hosted.len());
        for entry_idx in hosted {
            let live: Vec<usize> = (0..n)
                .filter(|&p| p != position && slab.alive.is_alive(p))
                .collect();
            if live.len() < k {
                return Err(StoreError::Unrecoverable { entry: entry_idx });
            }
            let codeword = {
                // audit: panic ok — `live.len() >= k` was checked above
                let guards = lock_nodes(&slab.nodes, &live[..k]);
                let mut shares: Vec<(usize, &[u8])> = Vec::with_capacity(k);
                // audit: panic ok — `live.len() >= k` was checked above
                for (source, guard) in live[..k].iter().copied().zip(guards.iter()) {
                    let key = SymbolKey {
                        entry: entry_idx,
                        position: source,
                    };
                    if !guard.touch(key) {
                        self.metrics.add_failed_read();
                        return Err(StoreError::Unrecoverable { entry: entry_idx });
                    }
                    self.metrics.add_symbol_reads(1);
                    // audit: panic ok — touch succeeded on this guard, so the block is stored
                    shares.push((source, guard.peek_stored(key).expect("touched above").as_slice()));
                }
                let object = self.codec.decode_blocks(&shares)?;
                self.codec.encode_blocks(&object)?
            };
            let key = SymbolKey {
                entry: entry_idx,
                position,
            };
            staged.push((key, codeword.shard(position).to_vec()));
            fault::reached("engine::rebuild::staged");
        }
        if fault::buggify("engine::rebuild::abort") {
            // An injected mid-repair death: nothing was committed, the node
            // keeps its previous contents and stays failed.
            return Err(StoreError::Unrecoverable { entry: slab_idx });
        }
        // Commit: every block rebuilt, so replace the node's contents.
        let rebuilt = staged.len();
        {
            // audit: panic ok — `position` was range-checked by locate_slab
            let mut node = slab.nodes[position].write();
            node.wipe();
            for (key, block) in staged {
                node.put(key, block);
                self.metrics.add_symbol_writes(1);
            }
        }
        self.metrics.add_repair();
        Ok(rebuilt)
    }

    /// A point-in-time snapshot of every counter the engine maintains.
    pub fn metrics_snapshot(&self) -> EngineMetrics {
        self.metrics_view(self.metrics.snapshot())
    }

    /// Resets the aggregate I/O counters and returns the final pre-reset
    /// metrics.
    ///
    /// Each counter is drained with an atomic swap, so across reset epochs
    /// every individual increment is reported exactly once — unlike a
    /// `metrics_snapshot()` + reset pair, which loses the increments that
    /// land between the two calls. The guarantee is per *counter*, not per
    /// operation: a retrieval in flight during the reset may have its
    /// `retrievals` increment drained into the returned snapshot while its
    /// `symbol_reads` land in the fresh epoch.
    ///
    /// **What survives a reset:** only the aggregate [`EngineMetrics::io`]
    /// counters are cleared. Per-node read counters (`node_reads`), cache
    /// statistics, node liveness and the version count keep accumulating;
    /// the returned snapshot reports their current values.
    pub fn reset_metrics(&self) -> EngineMetrics {
        self.metrics_view(self.metrics.take())
    }

    /// Completes an [`EngineMetrics`] around an already-captured `io` view.
    fn metrics_view(&self, io: IoMetrics) -> EngineMetrics {
        // The version and checkpoint counts take the archive lock, which is
        // *outermost* in the engine's hierarchy: capture them before
        // acquiring the slab directory. Waiting on the archive while holding
        // the directory inverts the order used by `append_version`
        // (archive → directory) and can deadlock against a concurrent writer.
        let (versions, checkpoints_written) = {
            let archive = self.read_archive();
            (archive.len(), archive.checkpoints_written() as u64)
        };
        let cache = self.cache.stats();
        // audit: atomic ok — statistic read
        let deltas_applied = self.deltas_applied.load(Ordering::Relaxed);
        let slabs = self.slabs.read();
        let mut node_reads = Vec::new();
        let mut live_nodes = 0usize;
        for slab in slabs.iter() {
            live_nodes += slab.alive.live_count();
            for node in slab.nodes.iter() {
                node_reads.push(node.read().reads());
            }
        }
        let nodes = node_reads.len();
        EngineMetrics {
            io,
            node_reads,
            live_nodes,
            nodes,
            cache,
            versions,
            deltas_applied,
            checkpoints_written,
        }
    }

    fn read_archive(&self) -> OrderedReadGuard<'_, ByteVersionedArchive> {
        self.archive.read()
    }

    /// Reads and decodes one stored entry from the live nodes of its slab
    /// under the SEC read plan, locking exactly the planned nodes. Under
    /// dispersed placement the slab is the entry's private node set, so
    /// failures elsewhere in the engine cannot affect this entry's plan.
    fn read_entry(
        &self,
        entry_idx: usize,
        payload: StoredPayload,
        shard_len: usize,
    ) -> Result<(usize, ByteShards), StoreError> {
        let Some(target) = read_target(payload) else {
            return Ok((0, ByteShards::zeroed(self.codec.code().k(), shard_len)));
        };
        let slab = self.slab_for_entry(entry_idx);
        // Lock-free planning: liveness is read from the slab's atomics, no
        // node lock is held until the plan is fixed.
        let live: Vec<usize> = (0..slab.alive.len())
            .filter(|&p| slab.alive.is_alive(p))
            .collect();
        let plan = plan_read(self.codec.code(), &live, target)
            .map_err(|_| StoreError::Unrecoverable { entry: entry_idx })?;

        let guards = lock_nodes(&slab.nodes, &plan.nodes);
        let mut shares: Vec<(usize, &[u8])> = Vec::with_capacity(plan.nodes.len());
        for (&position, guard) in plan.nodes.iter().zip(guards.iter()) {
            let key = SymbolKey {
                entry: entry_idx,
                position,
            };
            // Liveness was snapshotted at plan time: the engine never flips
            // a node's *internal* alive flag (only the `alive` atomics), so
            // `touch` here can only fail for a genuinely absent block — a
            // concurrent `fail_node` cannot abort an admitted read.
            if !guard.touch(key) {
                self.metrics.add_failed_read();
                return Err(StoreError::Unrecoverable { entry: entry_idx });
            }
            self.metrics.add_symbol_reads(1);
            shares.push((
                position,
                // audit: panic ok — touch succeeded on this guard, so the block is stored
                guard.peek_stored(key).expect("touched above").as_slice(),
            ));
        }
        let decoded = decode_planned(&self.codec, plan.method, target, &shares)?;
        Ok((plan.io_reads, decoded))
    }
}

/// Read-locks the given nodes of one slab in ascending id order (stable
/// acquisition order keeps the lock graph acyclic alongside the
/// one-at-a-time writers), returning guards in the caller's order.
fn lock_nodes<'a>(
    nodes: &'a [OrderedRwLock<StorageNode<Vec<u8>>>],
    positions: &[usize],
) -> Vec<OrderedReadGuard<'a, StorageNode<Vec<u8>>>> {
    let mut sorted: Vec<usize> = positions.to_vec();
    sorted.sort_unstable();
    let mut guards: Vec<(usize, OrderedReadGuard<'a, StorageNode<Vec<u8>>>)> = sorted
        .into_iter()
        // audit: panic ok — planned positions come from the live set, which indexes this slab
        .map(|p| (p, nodes[p].read()))
        .collect();
    // Hand the guards back in plan order.
    positions
        .iter()
        .map(|&p| {
            let idx = guards
                .iter()
                .position(|(gp, _)| *gp == p)
                // audit: panic ok — `sorted` is a permutation of `positions`, so every lookup hits
                .expect("every planned position was locked");
            guards.swap_remove(idx).1
        })
        .collect()
}

fn check_version(archive: &ByteVersionedArchive, l: usize) -> Result<(), StoreError> {
    if archive.is_empty() {
        return Err(StoreError::Versioning(VersioningError::EmptyArchive));
    }
    if l == 0 || l > archive.len() {
        return Err(StoreError::Versioning(VersioningError::NoSuchVersion {
            requested: l,
            available: archive.len(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_erasure::GeneratorForm;

    fn config(strategy: EncodingStrategy) -> ArchiveConfig {
        ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).unwrap()
    }

    /// Three versions of a 60-byte object (20-byte blocks): v2 edits one
    /// block (γ = 1), v3 edits two.
    fn versions() -> Vec<Vec<u8>> {
        let v1: Vec<u8> = (0..60).map(|i| (i * 7 + 13) as u8).collect();
        let mut v2 = v1.clone();
        v2[5] ^= 0x7C; // block 0
        let mut v3 = v2.clone();
        v3[25] ^= 0x11; // block 1
        v3[45] ^= 0x2F; // block 2
        vec![v1, v2, v3]
    }

    #[test]
    fn serves_every_strategy_and_matches_reference_reads() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let engine = SecEngine::new(config(strategy)).unwrap();
            let mut reference = ByteVersionedArchive::new(config(strategy)).unwrap();
            let vs = versions();
            engine.append_all(&vs).unwrap();
            reference.append_all(&vs).unwrap();
            for (l, expect) in vs.iter().enumerate() {
                let r = engine.get_version(l + 1).unwrap();
                let want = reference.retrieve_version(l + 1).unwrap();
                assert_eq!(&*r.data, expect, "{strategy} version {}", l + 1);
                assert_eq!(r.io_reads, want.io_reads, "{strategy} version {}", l + 1);
                assert!(!r.cached);
            }
            let p = engine.get_prefix(vs.len()).unwrap();
            let want = reference.retrieve_prefix(vs.len()).unwrap();
            assert_eq!(p.versions, want.versions, "{strategy} prefix");
            assert_eq!(p.io_reads, want.io_reads, "{strategy} prefix reads");
        }
    }

    #[test]
    fn with_shared_codec_shares_tables_and_rejects_mismatches() {
        let donor = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
        let codec = donor.codec().clone();
        let tables = codec.shared_tables();
        let before = Arc::strong_count(&tables);
        let engine =
            SecEngine::with_shared_codec(config(EncodingStrategy::BasicSec), &codec, 2).unwrap();
        // The engine (and its archive) hold handles to the donor's tables
        // allocation instead of materializing their own.
        assert!(Arc::strong_count(&tables) > before);
        let vs = versions();
        engine.append_all(&vs).unwrap();
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // A codec built for a different code is rejected, not adopted.
        let other = ArchiveConfig::new(4, 2, sec_erasure::GeneratorForm::NonSystematic, {
            EncodingStrategy::BasicSec
        })
        .unwrap();
        assert!(matches!(
            SecEngine::with_shared_codec(other, &codec, 0),
            Err(StoreError::Versioning(VersioningError::CodecMismatch { .. }))
        ));
    }

    #[test]
    fn from_archive_serves_preexisting_versions() {
        let mut archive = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        archive.append_all(&vs).unwrap();
        let engine = SecEngine::from_archive(archive);
        assert_eq!(engine.len(), 3);
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // Appends keep working after adoption.
        let mut v4 = vs[2].clone();
        v4[0] ^= 0xAA;
        engine.append_version(&v4).unwrap();
        assert_eq!(*engine.get_version(4).unwrap().data, v4);
    }

    #[test]
    fn survives_n_minus_k_failures_and_repairs() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        engine.fail_node(0).unwrap();
        engine.fail_node(3).unwrap();
        engine.fail_node(5).unwrap();
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // A fourth failure is fatal for full entries…
        engine.fail_node(1).unwrap();
        assert!(matches!(
            engine.get_version(1),
            Err(StoreError::Unrecoverable { .. })
        ));
        // …until a repair rebuilds a node from the survivors.
        engine.revive_node(1).unwrap();
        let rebuilt = engine.repair_node(0).unwrap();
        assert_eq!(rebuilt, 3);
        assert_eq!(*engine.get_version(3).unwrap().data, vs[2]);
        let m = engine.metrics_snapshot();
        assert_eq!(m.io.repairs, 1);
        // Nodes 3 and 5 are still failed; 0 was repaired and 1 revived.
        assert_eq!(m.live_nodes, 4);
    }

    #[test]
    fn failed_repair_preserves_recoverable_state() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        engine.fail_node(3).unwrap();
        engine.fail_node(4).unwrap();
        engine.fail_node(5).unwrap();
        // Recoverable from {0, 1, 2} — but repairing node 0 has only two
        // other live sources, so the repair must fail *without* wiping the
        // node it was asked to rebuild.
        assert!(matches!(
            engine.repair_node(0),
            Err(StoreError::Unrecoverable { .. })
        ));
        assert!(
            engine.is_node_alive(0).unwrap(),
            "failed repair must not change liveness"
        );
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(
                &*engine.get_version(l + 1).unwrap().data,
                expect,
                "version {} must survive the failed repair",
                l + 1
            );
        }
    }

    #[test]
    fn reversed_append_rewrites_the_latest_full_slot() {
        let engine = SecEngine::new(config(EncodingStrategy::ReversedSec)).unwrap();
        let vs = versions();
        for v in &vs {
            engine.append_version(v).unwrap();
            // After every append, every version so far must still be
            // servable — the full-copy slot moved and was rewritten.
            let l = engine.len();
            for (idx, expect) in vs[..l].iter().enumerate() {
                assert_eq!(&*engine.get_version(idx + 1).unwrap().data, expect);
            }
        }
        // Latest version costs exactly k block reads.
        assert_eq!(engine.get_version(3).unwrap().io_reads, 3);
    }

    #[test]
    fn cache_serves_hot_versions_without_reads() {
        let engine = SecEngine::with_cache(config(EncodingStrategy::BasicSec), 2).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        // Appends pre-warm the cache with the newest versions.
        let hot = engine.get_version(3).unwrap();
        assert!(hot.cached);
        assert_eq!(hot.io_reads, 0);
        assert_eq!(*hot.data, vs[2]);
        // An evicted version is decoded from the nodes, then cached.
        let cold = engine.get_version(1).unwrap();
        assert!(!cold.cached);
        assert!(cold.io_reads > 0);
        assert!(engine.get_version(1).unwrap().cached);
        let m = engine.metrics_snapshot();
        assert!(m.cache.hits >= 2);
        assert_eq!(m.versions, 3);
    }

    #[test]
    fn zero_capacity_cache_does_no_bookkeeping() {
        // Satellite contract: a disabled cache must skip ALL bookkeeping on
        // both read paths — no hits, no misses, no insert allocations — so
        // the cap-0 engine is bit-identical to the reference archive in both
        // bytes and accounting.
        for strategy in [EncodingStrategy::BasicSec, EncodingStrategy::ReversedSec] {
            let engine = SecEngine::new(config(strategy)).unwrap();
            let vs = versions();
            engine.append_all(&vs).unwrap();
            for l in 1..=vs.len() {
                assert!(!engine.get_version(l).unwrap().cached, "{strategy}");
            }
            assert!(!engine.get_prefix(vs.len()).unwrap().cached, "{strategy}");
            let m = engine.metrics_snapshot();
            assert_eq!(m.cache, CacheStats::default(), "{strategy}: all-zero stats");
            assert_eq!(m.deltas_applied, 0, "{strategy}");
        }
    }

    #[test]
    fn nearest_base_extends_forward_for_basic_sec() {
        let engine = SecEngine::with_cache(config(EncodingStrategy::BasicSec), 1).unwrap();
        let reference = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        reference.append_all(&vs).unwrap();
        // Capacity 1: the pre-warm leaves only v3 cached; decode v2 from the
        // nodes so the cache holds it as a base below v3.
        assert!(!engine.get_version(2).unwrap().cached);
        let via_base = engine.get_version(3).unwrap();
        let uncached = reference.get_version(3).unwrap();
        assert!(via_base.cached, "v2 is the nearest cached base ≤ 3");
        assert_eq!(*via_base.data, vs[2]);
        assert!(
            via_base.io_reads < uncached.io_reads,
            "base walk pays only δ3, not k + δ2 + δ3"
        );
        let m = engine.metrics_snapshot();
        assert_eq!(m.cache.base_hits, 1);
        assert_eq!(m.deltas_applied, 1, "one delta entry applied on the base");
    }

    #[test]
    fn reversed_tail_serves_older_versions_and_prefixes() {
        let engine = SecEngine::with_cache(config(EncodingStrategy::ReversedSec), 1).unwrap();
        let reference = SecEngine::new(config(EncodingStrategy::ReversedSec)).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        reference.append_all(&vs).unwrap();
        // Only v3 is cached. The prefix walk anchors on that tail and
        // un-applies every delta, skipping the k-read encoded full copy.
        let p = engine.get_prefix(3).unwrap();
        let want = reference.get_prefix(3).unwrap();
        assert!(p.cached);
        assert_eq!(p.versions, want.versions);
        assert_eq!(p.io_reads, want.io_reads - 3);
        // v1 is likewise served by un-applying δ3 and δ2 from the tail
        // (prefix probes never insert, so v3 is still the cached entry).
        let via_tail = engine.get_version(1).unwrap();
        let uncached = reference.get_version(1).unwrap();
        assert!(via_tail.cached);
        assert_eq!(*via_tail.data, vs[0]);
        assert_eq!(
            via_tail.io_reads,
            uncached.io_reads - 3,
            "the cached tail saves the k-read full copy"
        );
        let m = engine.metrics_snapshot();
        assert!(m.deltas_applied >= 4, "two tail walks × two deltas each");
    }

    #[test]
    fn shared_cache_keys_engines_by_object() {
        let cache = Arc::new(DeltaCache::new(4));
        let a = SecEngine::with_shared_cache(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Colocated,
            Arc::clone(&cache),
            1,
        )
        .unwrap();
        let b = SecEngine::with_shared_cache(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Colocated,
            Arc::clone(&cache),
            2,
        )
        .unwrap();
        let vs_a = versions();
        let mut vs_b = versions();
        for v in &mut vs_b {
            v[0] ^= 0xFF;
        }
        a.append_version(&vs_a[0]).unwrap();
        b.append_version(&vs_b[0]).unwrap();
        // Both engines pre-warmed version 1 of *their* object into the one
        // shared cache; the object key keeps them from aliasing.
        assert_eq!(cache.len(), 2);
        let from_a = a.get_version(1).unwrap();
        let from_b = b.get_version(1).unwrap();
        assert!(from_a.cached && from_b.cached);
        assert_eq!(*from_a.data, vs_a[0]);
        assert_eq!(*from_b.data, vs_b[0]);
    }

    #[test]
    fn clear_cache_forces_node_reads_again() {
        let engine = SecEngine::with_cache(config(EncodingStrategy::BasicSec), 4).unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        assert_eq!(engine.get_version(3).unwrap().io_reads, 0);
        engine.clear_cache();
        let r = engine.get_version(3).unwrap();
        assert!(!r.cached);
        assert!(r.io_reads > 0);
        assert_eq!(*r.data, vs[2]);
    }

    #[test]
    fn error_paths() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        assert!(matches!(
            engine.get_version(1),
            Err(StoreError::Versioning(VersioningError::EmptyArchive))
        ));
        let empty: Vec<Vec<u8>> = Vec::new();
        assert!(matches!(
            engine.append_all(&empty),
            Err(StoreError::Versioning(VersioningError::EmptyArchive))
        ));
        engine.append_version(&versions()[0]).unwrap();
        assert!(matches!(
            engine.get_version(0),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            engine.get_prefix(9),
            Err(StoreError::Versioning(VersioningError::NoSuchVersion { .. }))
        ));
        assert!(matches!(
            engine.append_version(&[1, 2]),
            Err(StoreError::Versioning(
                VersioningError::ObjectLengthMismatch { .. }
            ))
        ));
    }

    #[test]
    fn dispersed_engine_grows_node_space_and_serves_every_strategy() {
        for strategy in [
            EncodingStrategy::BasicSec,
            EncodingStrategy::OptimizedSec,
            EncodingStrategy::ReversedSec,
            EncodingStrategy::NonDifferential,
        ] {
            let engine =
                SecEngine::with_placement(config(strategy), PlacementStrategy::Dispersed, 0).unwrap();
            assert_eq!(engine.node_count(), 0, "{strategy}: empty means zero nodes");
            let mut reference = ByteVersionedArchive::new(config(strategy)).unwrap();
            let vs = versions();
            engine.append_all(&vs).unwrap();
            reference.append_all(&vs).unwrap();
            // One slab of 6 fresh nodes per stored entry.
            assert_eq!(engine.node_count(), 6 * reference.stored_entry_count());
            assert_eq!(engine.placement().strategy(), PlacementStrategy::Dispersed);
            for (l, expect) in vs.iter().enumerate() {
                let r = engine.get_version(l + 1).unwrap();
                let want = reference.retrieve_version(l + 1).unwrap();
                assert_eq!(&*r.data, expect, "{strategy} version {}", l + 1);
                assert_eq!(r.io_reads, want.io_reads, "{strategy} version {}", l + 1);
            }
            let p = engine.get_prefix(vs.len()).unwrap();
            let want = reference.retrieve_prefix(vs.len()).unwrap();
            assert_eq!(p.versions, want.versions, "{strategy} prefix");
            assert_eq!(p.io_reads, want.io_reads, "{strategy} prefix reads");
        }
    }

    #[test]
    fn dispersed_failure_degrades_only_the_hosting_entry() {
        // BasicSec stores [full v1, δ2, δ3]; under dispersed placement each
        // lives on its own 6 nodes (ids 0..6, 6..12, 12..18).
        let engine = SecEngine::with_placement(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Dispersed,
            0,
        )
        .unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        // Kill every node of entry 2 (δ3): only version 3 needs it.
        for node in 12..18 {
            engine.fail_node(node).unwrap();
        }
        assert_eq!(*engine.get_version(1).unwrap().data, vs[0]);
        assert_eq!(*engine.get_version(2).unwrap().data, vs[1]);
        assert!(matches!(
            engine.get_version(3),
            Err(StoreError::Unrecoverable { entry: 2 })
        ));
        // A colocated engine with the same six failures in one group would
        // have lost everything; dispersed isolation also survives n − k
        // failures *per entry* independently.
        engine.revive_node(12).unwrap();
        engine.revive_node(13).unwrap();
        engine.revive_node(14).unwrap();
        assert_eq!(*engine.get_version(3).unwrap().data, vs[2]);
        let m = engine.metrics_snapshot();
        assert_eq!(m.nodes, 18);
        assert_eq!(m.live_nodes, 15);
    }

    #[test]
    fn dispersed_repair_rebuilds_a_single_entry_block() {
        let engine = SecEngine::with_placement(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Dispersed,
            0,
        )
        .unwrap();
        let vs = versions();
        engine.append_all(&vs).unwrap();
        // Node 7 = entry 1, position 1: exactly one block to rebuild.
        engine.fail_node(7).unwrap();
        let rebuilt = engine.repair_node(7).unwrap();
        assert_eq!(rebuilt, 1);
        assert!(engine.is_node_alive(7).unwrap());
        for (l, expect) in vs.iter().enumerate() {
            assert_eq!(&*engine.get_version(l + 1).unwrap().data, expect);
        }
        // Out-of-range ids report the grown node count.
        assert!(matches!(
            engine.fail_node(18),
            Err(StoreError::InvalidNode { node: 18, n: 18 })
        ));
        // from_archive_with_placement adopts an existing archive dispersed.
        let mut archive = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
        archive.append_all(&vs).unwrap();
        let adopted = SecEngine::from_archive_with_placement(archive, PlacementStrategy::Dispersed, 0);
        assert_eq!(adopted.node_count(), 18);
        assert_eq!(*adopted.get_version(3).unwrap().data, vs[2]);
    }

    #[test]
    fn dispersed_patterns_index_the_global_node_space() {
        let engine = SecEngine::with_placement(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Dispersed,
            0,
        )
        .unwrap();
        engine.append_all(&versions()).unwrap();
        // Fail position 0 of every entry additively, then overwrite-revive
        // entry 0's group only.
        engine.apply_pattern_additive(&FailurePattern::with_failures(18, &[0, 6, 12]));
        assert!(!engine.is_node_alive(0).unwrap());
        assert!(!engine.is_node_alive(6).unwrap());
        assert!(!engine.is_node_alive(12).unwrap());
        engine.apply_pattern(&FailurePattern::none(6));
        assert!(engine.is_node_alive(0).unwrap(), "overwrite revives in range");
        assert!(!engine.is_node_alive(6).unwrap(), "beyond pattern length: kept");
        assert_eq!(engine.metrics_snapshot().live_nodes, 16);
    }

    #[test]
    fn metrics_account_node_reads() {
        let engine = SecEngine::new(config(EncodingStrategy::BasicSec)).unwrap();
        engine.append_all(&versions()).unwrap();
        engine.reset_metrics();
        let r = engine.get_version(2).unwrap();
        let m = engine.metrics_snapshot();
        assert_eq!(m.io.symbol_reads as usize, r.io_reads);
        assert_eq!(m.io.retrievals, 1);
        assert_eq!(m.node_reads.iter().sum::<u64>() as usize, r.io_reads);
        assert_eq!(m.live_nodes, 6);
    }
}
