//! Debug-build lock-ordering enforcement.
//!
//! The serving stack documents a strict lock hierarchy (see
//! `docs/INVARIANTS.md` and `audit.toml`): archive → placement → slab
//! directory → node slabs → cluster object map. The static auditor
//! (`sec-audit`) checks acquisition order lexically, but it cannot see
//! through every dynamic call path. [`OrderedRwLock`] closes that gap: each
//! lock carries a [`LockRank`], and in debug builds every acquisition is
//! checked against a thread-local stack of currently held ranks — taking a
//! lock at or below the highest held rank panics at the acquisition site,
//! turning a would-be deadlock into an immediate, attributable failure.
//! Release builds compile the bookkeeping away entirely.
//!
//! The wrapper also centralises poison handling: the engine treats a
//! poisoned lock as a fatal invariant breach everywhere, so the `panic!` on
//! poison lives here once instead of as an `.expect()` at every call site.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Position of a lock in the engine's documented hierarchy. Lower ranks are
/// outermost: a thread may only acquire a lock whose rank is strictly above
/// every rank it already holds (same rank only where
/// [`reentrant`](LockRank::reentrant)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockRank {
    /// `SecEngine`'s versioned byte archive — the outermost lock.
    Archive = 0,
    /// `SecEngine`'s placement table.
    Placement = 1,
    /// The slab directory (`Vec<NodeSlab>`).
    Directory = 2,
    /// Per-node symbol slabs. Reentrant: planned reads lock several nodes
    /// at this rank (in ascending id order, which breaks cycles among them).
    Node = 3,
    /// `SecCluster`'s per-shard object map — the innermost lock.
    ObjectMap = 4,
}

impl LockRank {
    /// Whether several locks of this rank may be held at once.
    pub fn reentrant(self) -> bool {
        matches!(self, LockRank::Node)
    }

    /// Human-readable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LockRank::Archive => "archive",
            LockRank::Placement => "placement",
            LockRank::Directory => "slab directory",
            LockRank::Node => "node slab",
            LockRank::ObjectMap => "object map",
        }
    }

    /// The fault-point site (see `sec_store::fault`) visited on every
    /// acquisition of a lock at this rank, so the deterministic simulator
    /// can trace lock order and exercise the hierarchy from a seed.
    pub fn site(self) -> sec_store::fault::Site {
        match self {
            LockRank::Archive => "engine::lock::archive",
            LockRank::Placement => "engine::lock::placement",
            LockRank::Directory => "engine::lock::directory",
            LockRank::Node => "engine::lock::node",
            LockRank::ObjectMap => "engine::lock::objects",
        }
    }
}

#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Proof of a recorded acquisition; dropping it un-records the rank.
    pub struct Token {
        rank: LockRank,
    }

    impl Token {
        pub fn acquire(rank: LockRank) -> Self {
            HELD.with(|cell| {
                let mut held = cell.borrow_mut();
                // Guards can drop out of declaration order, so compare
                // against the highest held rank, not the most recent one.
                if let Some(&top) = held.iter().max() {
                    assert!(
                        rank > top || (rank == top && rank.reentrant()),
                        "lock-order violation: acquiring the {} lock (rank {}) while \
                         holding the {} lock (rank {}) — see docs/INVARIANTS.md",
                        rank.name(),
                        rank as u8,
                        top.name(),
                        top as u8,
                    );
                }
                held.push(rank);
            });
            Token { rank }
        }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|cell| {
                let mut held = cell.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&r| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod held {
    use super::LockRank;

    /// Release builds: no bookkeeping, zero-sized token.
    pub struct Token;

    impl Token {
        #[inline(always)]
        pub fn acquire(_rank: LockRank) -> Self {
            Token
        }
    }
}

/// An [`RwLock`] that knows its place in the engine's lock hierarchy.
///
/// `read`/`write` never return poison errors: the engine treats a poisoned
/// lock as a fatal invariant breach, and the panic is centralised here.
pub struct OrderedRwLock<T> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` in a lock at the given hierarchy rank.
    pub fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: RwLock::new(value),
        }
    }

    /// Acquires the shared lock, debug-asserting the hierarchy first.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        sec_store::fault::reached(self.rank.site());
        let token = held::Token::acquire(self.rank);
        let guard = match self.inner.read() {
            Ok(guard) => guard,
            // audit: panic ok — poison means a writer panicked mid-update; the
            // protected state can no longer be trusted, so every path treats
            // this as fatal (this is the one place that decision lives)
            Err(_) => panic!("{} lock poisoned", self.rank.name()),
        };
        OrderedReadGuard { guard, _token: token }
    }

    /// Acquires the exclusive lock, debug-asserting the hierarchy first.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        sec_store::fault::reached(self.rank.site());
        let token = held::Token::acquire(self.rank);
        let guard = match self.inner.write() {
            Ok(guard) => guard,
            // audit: panic ok — same fatal-poison policy as `read` above
            Err(_) => panic!("{} lock poisoned", self.rank.name()),
        };
        OrderedWriteGuard { guard, _token: token }
    }
}

impl<T> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// Shared guard from [`OrderedRwLock::read`].
pub struct OrderedReadGuard<'a, T> {
    // Field order matters: the lock is released before the rank is popped,
    // so the held-set over-approximates and never misses a violation.
    guard: RwLockReadGuard<'a, T>,
    _token: held::Token,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard from [`OrderedRwLock::write`].
pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: held::Token,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_is_allowed() {
        let archive = OrderedRwLock::new(LockRank::Archive, 1u32);
        let directory = OrderedRwLock::new(LockRank::Directory, 2u32);
        let objects = OrderedRwLock::new(LockRank::ObjectMap, 3u32);
        let a = archive.read();
        let d = directory.write();
        let o = objects.read();
        assert_eq!(*a + *d + *o, 6);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn inverted_acquisition_panics_in_debug() {
        let archive = OrderedRwLock::new(LockRank::Archive, 1u32);
        let objects = OrderedRwLock::new(LockRank::ObjectMap, 3u32);
        let _o = objects.write();
        let a = archive.read();
        // Release builds skip the check; keep the guard observable so the
        // test body is not optimised away.
        assert_eq!(*a, 1);
    }

    #[test]
    fn node_rank_is_reentrant() {
        let n0 = OrderedRwLock::new(LockRank::Node, 0u32);
        let n1 = OrderedRwLock::new(LockRank::Node, 1u32);
        let g0 = n0.read();
        let g1 = n1.read();
        assert_eq!(*g0 + *g1, 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn non_reentrant_same_rank_panics_in_debug() {
        let a = OrderedRwLock::new(LockRank::Archive, 1u32);
        let b = OrderedRwLock::new(LockRank::Archive, 2u32);
        let ga = a.read();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn out_of_order_drops_keep_the_held_set_honest() {
        let archive = OrderedRwLock::new(LockRank::Archive, 1u32);
        let directory = OrderedRwLock::new(LockRank::Directory, 2u32);
        let a = archive.read();
        let d = directory.read();
        drop(a); // outer released first
        drop(d);
        // Both released: the full hierarchy is available again.
        let objects = OrderedRwLock::new(LockRank::ObjectMap, 0u32);
        {
            let _g = objects.write();
        }
        let _a = archive.write();
    }

    #[test]
    fn release_after_inner_drop_allows_reacquisition() {
        let archive = OrderedRwLock::new(LockRank::Archive, 7u32);
        {
            let inner = archive.read();
            assert_eq!(*inner, 7);
        }
        let mut w = archive.write();
        *w += 1;
        assert_eq!(*w, 8);
    }
}
