//! The threaded stress suite: a [`SecEngine`] must serve many concurrent
//! readers with results and symbol-read counts *identical* to the
//! single-threaded references, across every survivable failure pattern.
//!
//! Two references are used:
//!
//! * [`ByteVersionedArchive`] — the all-nodes-alive read counts (eqs. 3–4 of
//!   the paper lifted to blocks);
//! * [`ByteDistributedStore`] — the failure-aware counts under a colocated
//!   placement, which the engine's sharded-node layout mirrors.
//!
//! Reads are deterministic given the live set, so even the aggregate
//! counters must come out exact: N threads each replaying the reference
//! workload must account exactly N × the reference's block reads.
//!
//! The byte workload is drawn from a suite seed (`sec_sim::seed::resolve`),
//! so every run prints a `SEC_SIM_SEED=…` line — captured by cargo and shown
//! only on failure — that replays the exact version profile bit-identically.

use std::sync::Arc;
use std::thread;

use sec_engine::SecEngine;
use sec_erasure::GeneratorForm;
use sec_sim::SimRng;
use sec_store::failure::enumerate_patterns;
use sec_store::ByteDistributedStore;
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;
const READERS: usize = 8;

fn config(strategy: EncodingStrategy) -> ArchiveConfig {
    ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap()
}

/// Eight versions of a 90-byte object (30-byte blocks) with a mixed
/// sparsity profile: the γ sequence is fixed — sparse single-block edits, a
/// two-block edit, an identical version (γ = 0) and a dense rewrite — while
/// the edited positions and masks are a pure function of `seed`, so the
/// printed `SEC_SIM_SEED` replays the exact bytes of a failing run.
fn versions(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed);
    let v1: Vec<u8> = (0..90).map(|i| (i * 31 + 7) as u8).collect();
    let mut out = vec![v1];
    // γ = distinct 30-byte blocks touched per update.
    for gamma in [1usize, 1, 0, 2, 3, 1, 2] {
        let mut next = out.last().unwrap().clone();
        let mut blocks = [0usize, 1, 2];
        rng.shuffle(&mut blocks);
        for &block in &blocks[..gamma] {
            let position = block * 30 + rng.gen_range(30);
            // A non-zero mask, so the block genuinely changes and γ holds.
            next[position] ^= 1 + rng.gen_range(255) as u8;
        }
        out.push(next);
    }
    out
}

/// One reference retrieval outcome: the bytes and the exact block reads.
struct Expected {
    data: Vec<u8>,
    io_reads: usize,
}

/// Spawns `READERS` threads, each retrieving every version `rounds` times,
/// asserting bit-identical data and read counts against `expected`.
fn hammer(engine: &Arc<SecEngine>, expected: &Arc<Vec<Expected>>, rounds: usize) {
    let handles: Vec<_> = (0..READERS)
        .map(|t| {
            let engine = Arc::clone(engine);
            let expected = Arc::clone(expected);
            thread::spawn(move || {
                for round in 0..rounds {
                    // Stagger the per-thread version order so different
                    // readers hold different node-lock subsets at once.
                    for i in 0..expected.len() {
                        let l = (t + round + i) % expected.len() + 1;
                        let want = &expected[l - 1];
                        let got = engine.get_version(l).unwrap_or_else(|e| {
                            panic!("reader {t} round {round}: version {l} failed: {e}")
                        });
                        assert_eq!(*got.data, want.data, "reader {t} version {l}: wrong bytes");
                        assert_eq!(
                            got.io_reads, want.io_reads,
                            "reader {t} version {l}: wrong read count"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread panicked");
    }
}

#[test]
fn eight_readers_match_the_archive_reference_bit_for_bit() {
    let seed = sec_sim::seed::resolve("engine-concurrency");
    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        let vs = versions(seed);
        let mut reference = ByteVersionedArchive::new(config(strategy)).unwrap();
        reference.append_all(&vs).unwrap();
        let expected: Arc<Vec<Expected>> = Arc::new(
            (1..=vs.len())
                .map(|l| {
                    let r = reference.retrieve_version(l).unwrap();
                    Expected {
                        data: r.data,
                        io_reads: r.io_reads,
                    }
                })
                .collect(),
        );

        let engine = SecEngine::new(config(strategy)).unwrap();
        engine.append_all(&vs).unwrap();
        engine.reset_metrics();
        let engine = Arc::new(engine);
        const ROUNDS: usize = 3;
        hammer(&engine, &expected, ROUNDS);

        // Aggregate accounting must be exact: every reader replayed the
        // reference workload, so total block reads are READERS × ROUNDS ×
        // the reference total.
        let reference_total: usize = expected.iter().map(|e| e.io_reads).sum();
        let m = engine.metrics_snapshot();
        assert_eq!(
            m.io.symbol_reads as usize,
            READERS * ROUNDS * reference_total,
            "{strategy}: aggregate reads must be exactly N threads × reference"
        );
        assert_eq!(
            m.io.retrievals as usize,
            READERS * ROUNDS * vs.len(),
            "{strategy}"
        );
        assert_eq!(m.io.failed_reads, 0, "{strategy}");
        assert_eq!(
            m.node_reads.iter().sum::<u64>(),
            m.io.symbol_reads,
            "{strategy}: per-node counters must sum to the aggregate"
        );
    }
}

#[test]
fn eight_readers_under_every_survivable_failure_pattern() {
    let vs = versions(sec_sim::seed::resolve("engine-concurrency-patterns"));
    let strategy = EncodingStrategy::BasicSec;

    // Failure-aware single-threaded reference: a colocated byte store.
    let mut reference_archive = ByteVersionedArchive::new(config(strategy)).unwrap();
    reference_archive.append_all(&vs).unwrap();

    let engine = SecEngine::new(config(strategy)).unwrap();
    engine.append_all(&vs).unwrap();
    let engine = Arc::new(engine);

    let mut checked = 0usize;
    for pattern in enumerate_patterns(N) {
        if pattern.failed_count() > N - K {
            continue;
        }
        checked += 1;

        let reference_store = ByteDistributedStore::colocated(&reference_archive);
        reference_store.apply_pattern(&pattern);
        let expected: Arc<Vec<Expected>> = Arc::new(
            (1..=vs.len())
                .map(|l| {
                    let r = reference_store.retrieve_version(&reference_archive, l).unwrap();
                    Expected {
                        data: r.data,
                        io_reads: r.io_reads,
                    }
                })
                .collect(),
        );

        engine.apply_pattern(&pattern);
        engine.reset_metrics();
        hammer(&engine, &expected, 1);

        let reference_total: usize = expected.iter().map(|e| e.io_reads).sum();
        let m = engine.metrics_snapshot();
        assert_eq!(
            m.io.symbol_reads as usize,
            READERS * reference_total,
            "pattern {:?}: aggregate reads must be exactly N threads × reference",
            pattern.failed_nodes()
        );
        assert_eq!(m.live_nodes, N - pattern.failed_count());
    }
    // 1 + 6 + 15 + 20 patterns of weight ≤ 3 over 6 nodes.
    assert_eq!(checked, 42);
}

#[test]
fn readers_race_failures_appends_and_repairs_without_corruption() {
    // A liveness/consistency smoke: readers hammer the engine while another
    // thread fails, revives and repairs nodes and appends new versions.
    // Results must always be *some* complete version image — never a torn
    // read — and every successful retrieval of version l must equal the
    // reference bytes for l.
    let vs = versions(sec_sim::seed::resolve("engine-concurrency-races"));
    let strategy = EncodingStrategy::BasicSec;
    let engine = SecEngine::new(config(strategy)).unwrap();
    engine.append_all(&vs[..4]).unwrap();
    let engine = Arc::new(engine);

    let expected: Arc<Vec<Vec<u8>>> = Arc::new(vs.clone());

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                let mut served = 0usize;
                for round in 0..60 {
                    let available = engine.len();
                    let l = (t + round) % available + 1;
                    match engine.get_version(l) {
                        Ok(r) => {
                            assert_eq!(*r.data, expected[l - 1], "reader {t}: torn read of v{l}");
                            served += 1;
                        }
                        // Unrecoverable is legitimate while the chaos thread
                        // holds ≥ n−k nodes down.
                        Err(e) => assert!(
                            matches!(e, sec_store::StoreError::Unrecoverable { .. }),
                            "reader {t}: unexpected error {e}"
                        ),
                    }
                }
                served
            })
        })
        .collect();

    let chaos = {
        let engine = Arc::clone(&engine);
        let vs = vs.clone();
        thread::spawn(move || {
            for (i, v) in vs[4..].iter().enumerate() {
                let node = i % N;
                engine.fail_node(node).expect("in-range node");
                engine.append_version(v).expect("append during failures");
                engine.revive_node(node).expect("in-range node");
                engine.repair_node(node).expect("repair with one failure");
            }
        })
    };

    chaos.join().expect("chaos thread panicked");
    let total_served: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_served > 0, "readers must have made progress");

    // Quiesced: everything is repaired, so every version reads exactly.
    for (l, expect) in vs.iter().enumerate() {
        assert_eq!(*engine.get_version(l + 1).unwrap().data, *expect);
    }
}
