//! Golden cross-check: engine-level recoverability under exhaustive failure
//! patterns must reproduce `sec-analysis`'s §IV availability numbers.
//!
//! For a dispersed engine, every stored entry lives on its own `n` nodes and
//! fails independently, so whole-archive availability is the product of the
//! per-entry survival probabilities (eq. 11/14). Each per-entry probability
//! is computed here **from the serving engine itself**: enumerate all `2^n`
//! failure patterns of that entry's private node set, ask the engine whether
//! the version needing the entry still serves, and weight by the pattern's
//! probability. The product must equal
//! [`sec_analysis::availability::dispersed_availability`] — the paper's
//! census, reproduced by the engine's read planner. The colocated engine is
//! tied to eq. 13/15 the same way.

use sec_analysis::availability::{colocated_availability, dispersed_availability, Scheme};
use sec_engine::SecEngine;
use sec_erasure::{GeneratorForm, SecCode};
use sec_gf::Gf256;
use sec_store::failure::enumerate_patterns;
use sec_store::PlacementStrategy;
use sec_versioning::{ArchiveConfig, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;

/// Three versions of a 60-byte object with single-block edits: the stored
/// entries are [full v1, δ2 (γ=1), δ3 (γ=1)] — the sparsity profile `[1, 1]`
/// fed to the analysis side.
fn versions() -> Vec<Vec<u8>> {
    let v1: Vec<u8> = (0..60).map(|i| (i * 7 + 13) as u8).collect();
    let mut v2 = v1.clone();
    v2[5] ^= 0x7C; // block 0
    let mut v3 = v2.clone();
    v3[25] ^= 0x11; // block 1
    vec![v1, v2, v3]
}

/// Availability of entry `entry` measured from the engine: enumerate every
/// failure pattern of the entry's private node set (all other entries fully
/// live, so `get_version(entry + 1)` can only fail at this entry) and sum
/// the survival probabilities.
fn engine_entry_availability(engine: &SecEngine, entry: usize, p: f64) -> f64 {
    let mut availability = 0.0;
    for pattern in enumerate_patterns(N) {
        for position in 0..N {
            let node = entry * N + position;
            if pattern.is_failed(position) {
                engine.fail_node(node).unwrap();
            } else {
                engine.revive_node(node).unwrap();
            }
        }
        if engine.get_version(entry + 1).is_ok() {
            availability += pattern.probability(p);
        }
    }
    for position in 0..N {
        engine.revive_node(entry * N + position).unwrap();
    }
    availability
}

/// Runs the per-entry census on a dispersed engine and compares the product
/// to the analysis crate's closed-form/census availability.
fn assert_dispersed_census_matches(strategy: EncodingStrategy, form: GeneratorForm, scheme: Scheme) {
    let config = ArchiveConfig::new(N, K, form, strategy).unwrap();
    let engine = SecEngine::with_placement(config, PlacementStrategy::Dispersed, 0).unwrap();
    engine.append_all(&versions()).unwrap();
    let entries = engine.node_count() / N;
    assert_eq!(entries, 3);
    let code: SecCode<Gf256> = SecCode::cauchy(N, K, form).unwrap();
    for &p in &[0.05, 0.1, 0.2] {
        let measured: f64 = (0..entries)
            .map(|entry| engine_entry_availability(&engine, entry, p))
            .product();
        let analytic = dispersed_availability(&code, scheme, &[1, 1], p);
        assert!(
            (measured - analytic).abs() < 1e-12,
            "{scheme} p={p}: engine census {measured} vs analysis {analytic}"
        );
    }
}

#[test]
fn dispersed_engine_census_matches_non_systematic_sec() {
    assert_dispersed_census_matches(
        EncodingStrategy::BasicSec,
        GeneratorForm::NonSystematic,
        Scheme::NonSystematicSec,
    );
}

#[test]
fn dispersed_engine_census_matches_systematic_sec() {
    // The systematic delta-loss probability is pattern-dependent (which
    // 2γ-subsets satisfy Criterion 2 depends on the concrete generator);
    // the engine's read planner must reproduce the exact census.
    assert_dispersed_census_matches(
        EncodingStrategy::BasicSec,
        GeneratorForm::Systematic,
        Scheme::SystematicSec,
    );
}

#[test]
fn dispersed_engine_census_matches_non_differential_baseline() {
    assert_dispersed_census_matches(
        EncodingStrategy::NonDifferential,
        GeneratorForm::NonSystematic,
        Scheme::NonDifferential,
    );
}

/// The colocated engine ties to eq. 13/15: the archive survives exactly when
/// any `k` of the shared `n` nodes survive, regardless of sparsity.
#[test]
fn colocated_engine_census_matches_shared_group_availability() {
    let config =
        ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
    let engine = SecEngine::with_placement(config, PlacementStrategy::Colocated, 0).unwrap();
    let vs = versions();
    engine.append_all(&vs).unwrap();
    let code: SecCode<Gf256> = SecCode::cauchy(N, K, GeneratorForm::NonSystematic).unwrap();
    for &p in &[0.05, 0.1, 0.2] {
        let mut measured = 0.0;
        for pattern in enumerate_patterns(N) {
            engine.apply_pattern(&pattern);
            // The whole-archive event: every version retrievable.
            if (1..=vs.len()).all(|l| engine.get_version(l).is_ok()) {
                measured += pattern.probability(p);
            }
        }
        engine.apply_pattern(&sec_store::FailurePattern::none(N));
        let analytic = colocated_availability(&code, p);
        assert!(
            (measured - analytic).abs() < 1e-12,
            "colocated p={p}: engine census {measured} vs analysis {analytic}"
        );
    }
}
