//! Known-answer tests pinning `SecCluster`'s object→shard routing.
//!
//! The wire protocol addresses objects by id (or by name, via
//! `ObjectId::from_name`), and clients may cache routing decisions — so the
//! SplitMix64-based `shard_of` mapping is a **wire-stable contract**: these
//! exact values must survive refactors. If a change breaks them on purpose
//! it must bump the protocol docs and this file together.

use sec_engine::{ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_versioning::{ArchiveConfig, EncodingStrategy};

fn cluster(shards: usize) -> SecCluster {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid archive config");
    SecCluster::new(config, shards).expect("cluster")
}

#[test]
fn shard_routing_is_pinned_for_fixed_ids() {
    // (id, shard at S=4, shard at S=8); S=1 maps everything to 0.
    let expected: &[(u64, usize, usize)] = &[
        (0, 3, 7),
        (1, 1, 1),
        (2, 2, 6),
        (3, 1, 5),
        (7, 3, 7),
        (42, 1, 5),
        (0xdead_beef, 3, 3),
        (u64::MAX, 0, 0),
    ];
    let s1 = cluster(1);
    let s4 = cluster(4);
    let s8 = cluster(8);
    for &(id, at4, at8) in expected {
        assert_eq!(s1.shard_of(ObjectId(id)), 0, "id {id:#x} at S=1");
        assert_eq!(s4.shard_of(ObjectId(id)), at4, "id {id:#x} at S=4");
        assert_eq!(s8.shard_of(ObjectId(id)), at8, "id {id:#x} at S=8");
    }
}

#[test]
fn named_objects_route_through_fnv_then_splitmix() {
    // (name, FNV-1a id, shard at S=4, shard at S=8) — the same values the
    // wire protocol produces for `GET <name> <ver>`.
    let expected: &[(&str, u64, usize, usize)] = &[
        ("alpha", 0x8ac6_25bb_85ed_202b, 1, 1),
        ("omega", 0x3460_cbae_3ad8_be88, 2, 2),
        ("object-17", 0xbdb3_152c_fde3_1921, 1, 1),
        ("sec", 0x823b_7c19_5ce1_fb72, 1, 1),
    ];
    let s4 = cluster(4);
    let s8 = cluster(8);
    for &(name, id, at4, at8) in expected {
        let object = ObjectId::from_name(name);
        assert_eq!(object, ObjectId(id), "{name} hashes to a pinned id");
        assert_eq!(s4.shard_of(object), at4, "{name} at S=4");
        assert_eq!(s8.shard_of(object), at8, "{name} at S=8");
    }
}

#[test]
fn routing_matches_where_objects_actually_land() {
    // The pinned mapping is not just a pure function: appending an object
    // must make it readable, and shard-scoped failures must hit exactly the
    // objects pinned to that shard.
    let cluster = cluster(4);
    for id in [0u64, 1, 2, 3, 7, 42] {
        cluster
            .append_all(ObjectId(id), &[vec![id as u8; 48]])
            .expect("append");
    }
    // Ids 1, 3 and 42 are pinned to shard 1 (above); fail all of shard 1's
    // nodes and exactly those objects must become unreadable.
    for node in 0..6 {
        cluster.fail_node(1, node).expect("fail");
    }
    for id in [0u64, 1, 2, 3, 7, 42] {
        let read = cluster.get_version(ObjectId(id), 1);
        let pinned_to_shard_1 = matches!(id, 1 | 3 | 42);
        assert_eq!(
            read.is_err(),
            pinned_to_shard_1,
            "id {id} readability after shard 1 died"
        );
    }
}
