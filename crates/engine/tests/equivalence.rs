//! Property-based equivalence: for any random byte-version history and any
//! strategy, `SecEngine::get_version` / `get_prefix` must agree with the
//! single-threaded [`ByteVersionedArchive`] reference — same bytes *and* the
//! same block-read accounting — and the engine's aggregate metrics must add
//! up to exactly the per-retrieval counts it reported.

use proptest::prelude::*;

use sec_engine::SecEngine;
use sec_erasure::GeneratorForm;
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;

/// A random version history of `len`-byte objects: a base object plus up to
/// five per-version edit sets (byte position, xor mask), mask 0 excluded so
/// an edit always changes the byte (γ can still be 0 via empty edit sets).
fn history() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let len = 3 * 17usize; // three 17-byte blocks
    let base = prop::collection::vec(0u8..=255, len);
    let edits = prop::collection::vec(prop::collection::vec((0usize..len, 1u8..=255), 0..=6), 1..6);
    (base, edits).prop_map(|(base, edits)| {
        let mut versions = vec![base];
        for edit_set in edits {
            let mut next = versions.last().expect("non-empty").clone();
            for (pos, mask) in edit_set {
                next[pos] ^= mask;
            }
            versions.push(next);
        }
        versions
    })
}

fn strategy_strategy() -> impl Strategy<Value = EncodingStrategy> {
    prop_oneof![
        Just(EncodingStrategy::BasicSec),
        Just(EncodingStrategy::OptimizedSec),
        Just(EncodingStrategy::ReversedSec),
        Just(EncodingStrategy::NonDifferential),
    ]
}

fn form_strategy() -> impl Strategy<Value = GeneratorForm> {
    prop_oneof![
        Just(GeneratorForm::Systematic),
        Just(GeneratorForm::NonSystematic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engine_get_version_equals_archive_retrieval(
        versions in history(),
        strategy in strategy_strategy(),
        form in form_strategy(),
    ) {
        let config = ArchiveConfig::new(N, K, form, strategy).unwrap();
        let mut reference = ByteVersionedArchive::new(config).unwrap();
        reference.append_all(&versions).unwrap();

        let engine = SecEngine::new(config).unwrap();
        engine.append_all(&versions).unwrap();
        engine.reset_metrics();

        let mut reported_reads = 0usize;
        for l in 1..=versions.len() {
            let got = engine.get_version(l).unwrap();
            let want = reference.retrieve_version(l).unwrap();
            prop_assert_eq!(&*got.data, &want.data, "{} {} version {}", strategy, form, l);
            prop_assert_eq!(got.io_reads, want.io_reads, "{} {} version {}", strategy, form, l);
            prop_assert!(!got.cached);
            reported_reads += got.io_reads;
        }

        // Aggregate accounting: the atomic counters must equal the sum of
        // the per-retrieval reports, with one retrieval per get_version.
        let m = engine.metrics_snapshot();
        prop_assert_eq!(m.io.symbol_reads as usize, reported_reads);
        prop_assert_eq!(m.io.retrievals as usize, versions.len());
        prop_assert_eq!(m.io.failed_reads, 0);
        prop_assert_eq!(m.node_reads.iter().sum::<u64>(), m.io.symbol_reads);

        // Prefix retrieval agrees as well (data and reads).
        let got = engine.get_prefix(versions.len()).unwrap();
        let want = reference.retrieve_prefix(versions.len()).unwrap();
        prop_assert_eq!(&got.versions, &want.versions);
        prop_assert_eq!(got.io_reads, want.io_reads);
    }

    #[test]
    fn cached_engine_serves_the_same_bytes(
        versions in history(),
        strategy in strategy_strategy(),
    ) {
        // With a cache the read *counts* legitimately drop to zero on hits,
        // but the bytes must stay identical on every path.
        let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
        let engine = SecEngine::with_cache(config, 2).unwrap();
        engine.append_all(&versions).unwrap();
        for (l, expect) in versions.iter().enumerate() {
            let cold = engine.get_version(l + 1).unwrap();
            prop_assert_eq!(&*cold.data, expect, "version {}", l + 1);
            // An immediate re-read must be served from the cache with the
            // identical bytes and zero block reads.
            let hot = engine.get_version(l + 1).unwrap();
            prop_assert!(hot.cached, "version {} must hit the cache", l + 1);
            prop_assert_eq!(hot.io_reads, 0);
            prop_assert_eq!(&*hot.data, expect, "cached version {}", l + 1);
        }
        let stats = engine.metrics_snapshot().cache;
        prop_assert!(stats.hits >= versions.len() as u64);
    }
}
