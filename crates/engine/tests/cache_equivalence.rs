//! Property-based equivalence for the delta cache and anchor checkpoints:
//! a cached, checkpointed `SecEngine` must serve byte-for-byte what the
//! plain uncached archive serves — for every strategy and both placements —
//! and with the cache disabled its I/O accounting must match both the
//! checkpointed reference archive and the layout-based `IoModel`
//! predictions exactly. A final long-chain test pins the read-amplification
//! bound `k · (1 + spacing)` the checkpoint policy exists to provide.

use proptest::prelude::*;

use sec_engine::{PlacementStrategy, SecEngine};
use sec_erasure::GeneratorForm;
use sec_versioning::{
    ArchiveConfig, ByteVersionedArchive, CacheStats, CheckpointPolicy, EncodingStrategy, StoredPayload,
};

const N: usize = 6;
const K: usize = 3;

/// A random version history of `len`-byte objects: a base object plus up to
/// five per-version edit sets (byte position, xor mask), mask 0 excluded so
/// an edit always changes the byte (γ can still be 0 via empty edit sets).
fn history() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let len = 3 * 17usize; // three 17-byte blocks
    let base = prop::collection::vec(0u8..=255, len);
    let edits = prop::collection::vec(prop::collection::vec((0usize..len, 1u8..=255), 0..=6), 1..6);
    (base, edits).prop_map(|(base, edits)| {
        let mut versions = vec![base];
        for edit_set in edits {
            let mut next = versions.last().expect("non-empty").clone();
            for (pos, mask) in edit_set {
                next[pos] ^= mask;
            }
            versions.push(next);
        }
        versions
    })
}

fn strategy_strategy() -> impl Strategy<Value = EncodingStrategy> {
    prop_oneof![
        Just(EncodingStrategy::BasicSec),
        Just(EncodingStrategy::OptimizedSec),
        Just(EncodingStrategy::ReversedSec),
        Just(EncodingStrategy::NonDifferential),
    ]
}

fn placement_strategy() -> impl Strategy<Value = PlacementStrategy> {
    prop_oneof![
        Just(PlacementStrategy::Colocated),
        Just(PlacementStrategy::Dispersed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bytes first: whatever the cache and checkpoint policy do to the
    /// *layout* and the *walks*, the decoded versions must equal the plain
    /// (checkpoint-free, cache-free) archive's — on a cold pass, on a
    /// second pass served from the warm cache, and through `get_prefix`.
    #[test]
    fn cached_checkpointed_bytes_equal_the_uncached_archive(
        versions in history(),
        strategy in strategy_strategy(),
        placement in placement_strategy(),
        spacing in 0usize..4,
        capacity in 1usize..5,
    ) {
        let plain = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
        let mut uncached = ByteVersionedArchive::new(plain).unwrap();
        uncached.append_all(&versions).unwrap();

        let config = plain.with_checkpoints(CheckpointPolicy::every(spacing));
        let engine = SecEngine::with_placement(config, placement, capacity).unwrap();
        engine.append_all(&versions).unwrap();

        for pass in 0..2 {
            for l in 1..=versions.len() {
                let got = engine.get_version(l).unwrap();
                let want = uncached.retrieve_version(l).unwrap();
                prop_assert_eq!(
                    &*got.data, &want.data,
                    "{} {:?} spacing {} pass {} version {}", strategy, placement, spacing, pass, l
                );
            }
            let prefix = engine.get_prefix(versions.len()).unwrap();
            for (idx, got) in prefix.versions.iter().enumerate() {
                prop_assert_eq!(
                    got.as_slice(), versions[idx].as_slice(),
                    "{} {:?} spacing {} pass {} prefix version {}",
                    strategy, placement, spacing, pass, idx + 1
                );
            }
        }

        // Re-reading the latest version must now be a pure cache hit: it
        // was inserted by the read above (or the append pre-warm) and no
        // strategy evicts it before any other version.
        let latest = versions.len();
        engine.get_version(latest).unwrap();
        let again = engine.get_version(latest).unwrap();
        prop_assert!(again.cached, "{} {:?}: repeat read of the latest version missed", strategy, placement);
        prop_assert_eq!(again.io_reads, 0);
        prop_assert_eq!(&*again.data, &versions[latest - 1]);
    }

    /// Accounting second: with the cache *disabled*, the checkpointed
    /// engine's per-read I/O must equal the identically-checkpointed
    /// reference archive and the layout-based `IoModel` prediction, for
    /// every version and every prefix — and the cache must have done zero
    /// bookkeeping.
    #[test]
    fn uncached_engine_io_matches_the_layout_model(
        versions in history(),
        strategy in strategy_strategy(),
        placement in placement_strategy(),
        spacing in 0usize..4,
    ) {
        let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy)
            .unwrap()
            .with_checkpoints(CheckpointPolicy::every(spacing));
        let mut reference = ByteVersionedArchive::new(config).unwrap();
        reference.append_all(&versions).unwrap();
        let engine = SecEngine::with_placement(config, placement, 0).unwrap();
        engine.append_all(&versions).unwrap();

        let model = config.io_model();
        let layout: Vec<StoredPayload> =
            reference.stored_entries().iter().map(|e| e.payload).collect();
        for l in 1..=versions.len() {
            let got = engine.get_version(l).unwrap();
            let want = reference.retrieve_version(l).unwrap();
            prop_assert!(!got.cached);
            prop_assert_eq!(
                got.io_reads, want.io_reads,
                "{} {:?} spacing {} version {}: engine vs reference", strategy, placement, spacing, l
            );
            prop_assert_eq!(
                got.io_reads,
                model.version_reads_for_layout(strategy, &layout, l),
                "{} {:?} spacing {} version {}: engine vs layout model", strategy, placement, spacing, l
            );

            let prefix = engine.get_prefix(l).unwrap();
            let prefix_want = reference.retrieve_prefix(l).unwrap();
            prop_assert!(!prefix.cached);
            prop_assert_eq!(
                prefix.io_reads, prefix_want.io_reads,
                "{} {:?} spacing {} prefix {}: engine vs reference", strategy, placement, spacing, l
            );
            prop_assert_eq!(
                prefix.io_reads,
                model.prefix_reads_for_layout(strategy, &layout, l),
                "{} {:?} spacing {} prefix {}: engine vs layout model", strategy, placement, spacing, l
            );
        }
        prop_assert_eq!(engine.metrics_snapshot().cache, CacheStats::default());
    }
}

/// The acceptance bound the checkpoint policy exists for: on a 64-version
/// Basic-SEC chain, every version read with spacing `c` costs at most
/// `k · (1 + c)` block reads — while the checkpoint-free chain's tail read
/// grows with the whole history.
#[test]
fn checkpoint_spacing_bounds_read_amplification_on_a_long_chain() {
    let len = 3 * 7; // three 7-byte blocks
    let mut versions: Vec<Vec<u8>> = vec![vec![0x5A; len]];
    for j in 1..64usize {
        let mut next = versions[j - 1].clone();
        next[(j * 5) % len] ^= (j as u8).wrapping_mul(37) | 1;
        versions.push(next);
    }

    let plain = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid config");
    for spacing in [4usize, 8, 16] {
        let config = plain.with_checkpoints(CheckpointPolicy::every(spacing));
        let engine = SecEngine::with_cache(config, 0).expect("engine construction");
        engine.append_all(&versions).expect("append chain");
        let bound = K * (1 + spacing);
        for l in 1..=versions.len() {
            let r = engine.get_version(l).expect("retrieval");
            assert_eq!(*r.data, versions[l - 1], "spacing {spacing} version {l} bytes");
            assert!(
                r.io_reads <= bound,
                "spacing {spacing} version {l}: {} reads exceed the k(1+c) bound {bound}",
                r.io_reads
            );
        }
    }

    // Contrast: without checkpoints the tail read pays for every delta in
    // the chain, far beyond the tightest bound above.
    let engine = SecEngine::with_cache(plain, 0).expect("engine construction");
    engine.append_all(&versions).expect("append chain");
    let tail = engine.get_version(versions.len()).expect("retrieval");
    assert!(
        tail.io_reads > K * (1 + 16),
        "uncheckpointed tail read ({} reads) should exceed every spacing bound",
        tail.io_reads
    );
}
