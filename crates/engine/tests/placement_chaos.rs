//! Dispersed-placement chaos: a failed node (or a wholesale-failed entry)
//! must degrade **only the entry it hosts**. Readers of every other version
//! stay bit-exact in data *and* in read cost — even while the doomed entry's
//! nodes are failed and revived under them and an appender grows the slab
//! directory concurrently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sec_engine::SecEngine;
use sec_erasure::GeneratorForm;
use sec_sim::SimRng;
use sec_store::{PlacementStrategy, StoreError};
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;

fn config(strategy: EncodingStrategy) -> ArchiveConfig {
    ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap()
}

/// Six versions of a 60-byte object with single-byte (γ = 1) edits — one
/// edited byte touches exactly one block, and the non-zero mask guarantees
/// each version differs from its parent, so every version still owns one
/// entry. Positions and masks are a pure function of `seed`, so a failure's
/// printed `SEC_SIM_SEED` replays the exact workload.
fn versions(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed);
    let mut versions = vec![(0..60).map(|i| (i * 13 + 7) as u8).collect::<Vec<u8>>()];
    for _ in 1..6 {
        let mut next = versions.last().unwrap().clone();
        next[rng.gen_range(60)] ^= 1 + rng.gen_range(255) as u8;
        versions.push(next);
    }
    versions
}

/// Failing every node of entry `j` must leave every version whose walk does
/// not touch entry `j` byte-identical — at the all-alive reference's exact
/// read cost — and fail exactly the versions that need entry `j`.
#[test]
fn failing_one_entry_degrades_only_the_versions_that_need_it() {
    let seed = sec_sim::seed::resolve("placement-chaos");
    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        let vs = versions(seed);
        let mut reference = ByteVersionedArchive::new(config(strategy)).unwrap();
        reference.append_all(&vs).unwrap();
        let engine =
            SecEngine::with_placement(config(strategy), PlacementStrategy::Dispersed, 0).unwrap();
        engine.append_all(&vs).unwrap();
        let entries = reference.stored_entry_count();

        for doomed in 0..entries {
            // Wholesale-fail the doomed entry's private node set.
            for node in doomed * N..(doomed + 1) * N {
                engine.fail_node(node).unwrap();
            }
            for l in 1..=vs.len() {
                // Basic/Optimized SEC walk entries 0..l (anchor + deltas);
                // the baseline stores one full entry per version; Reversed
                // SEC reads the trailing full copy (the last entry, needed
                // by everyone) and walks deltas l-1..latest backwards.
                let latest = entries - 1;
                let touches_doomed = match strategy {
                    EncodingStrategy::NonDifferential => l - 1 == doomed,
                    EncodingStrategy::ReversedSec => {
                        doomed == latest || (doomed >= l - 1 && doomed < latest)
                    }
                    _ => doomed < l,
                };
                if touches_doomed {
                    assert!(
                        matches!(
                            engine.get_version(l),
                            Err(StoreError::Unrecoverable { entry }) if entry == doomed
                        ),
                        "{strategy} v{l} must be lost with entry {doomed} down"
                    );
                } else {
                    let got = engine.get_version(l).unwrap();
                    let want = reference.retrieve_version(l).unwrap();
                    assert_eq!(*got.data, want.data, "{strategy} v{l}, entry {doomed} down");
                    assert_eq!(
                        got.io_reads, want.io_reads,
                        "{strategy} v{l} read cost must not see entry {doomed}'s failures"
                    );
                }
            }
            // Revive for the next round.
            for node in doomed * N..(doomed + 1) * N {
                engine.revive_node(node).unwrap();
            }
        }
    }
}

/// Readers of healthy versions keep exact bytes *and* exact read costs while
/// a chaos thread flips the last entry's nodes and an appender grows the
/// slab directory — dispersed node sets are disjoint, so the churn is
/// invisible to them.
#[test]
fn concurrent_readers_are_isolated_from_entry_churn_and_growth() {
    let vs = versions(sec_sim::seed::resolve("placement-chaos-churn"));
    let mut reference = ByteVersionedArchive::new(config(EncodingStrategy::BasicSec)).unwrap();
    reference.append_all(&vs).unwrap();
    // Per-version expectations from the all-alive single-threaded reference.
    let expected: Vec<(Vec<u8>, usize)> = (1..vs.len()) // versions 1..=5: never touch entry 5
        .map(|l| {
            let r = reference.retrieve_version(l).unwrap();
            (r.data, r.io_reads)
        })
        .collect();

    let engine = Arc::new(
        SecEngine::with_placement(
            config(EncodingStrategy::BasicSec),
            PlacementStrategy::Dispersed,
            0,
        )
        .unwrap(),
    );
    engine.append_all(&vs).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    // Chaos: wholesale-fail and revive the last entry's slab (nodes 30..36).
    let chaos = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let doomed = 5usize;
            while !stop.load(Ordering::Relaxed) {
                for node in doomed * N..(doomed + 1) * N {
                    engine.fail_node(node).unwrap();
                }
                std::thread::yield_now();
                for node in doomed * N..(doomed + 1) * N {
                    engine.revive_node(node).unwrap();
                }
            }
        })
    };

    // Growth: keep appending γ = 1 versions, each adding a fresh slab.
    let grower = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let mut object = vs.last().unwrap().clone();
        std::thread::spawn(move || {
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) && round < 64 {
                object[(round * 31) % 60] ^= 0x55;
                engine.append_version(&object).unwrap();
                round += 1;
            }
        })
    };

    let readers: Vec<_> = (0..8)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for i in 0..200 {
                    let l = (t + i) % expected.len() + 1;
                    let (want, want_reads) = &expected[l - 1];
                    let got = engine.get_version(l).unwrap();
                    assert_eq!(&*got.data, want, "v{l} bytes under churn");
                    assert_eq!(got.io_reads, *want_reads, "v{l} read cost under churn");
                }
            })
        })
        .collect();

    for reader in readers {
        reader.join().expect("reader panicked");
    }
    stop.store(true, Ordering::Relaxed);
    chaos.join().expect("chaos thread panicked");
    grower.join().expect("grower thread panicked");

    // The node space grew behind the readers without disturbing them.
    assert!(engine.node_count() > vs.len() * N);
    assert_eq!(engine.node_count(), engine.metrics_snapshot().nodes);
}
