//! Property-based equivalence: a [`SecCluster`] of `S` shards serving `O`
//! objects must behave exactly like `O` independent single-threaded
//! [`ByteVersionedArchive`]s — per object, the same bytes *and* the same
//! block-read accounting, for every strategy × generator form — and the
//! cluster's aggregated metrics must add up to exactly the per-retrieval
//! counts it reported.
//!
//! This is the contract that makes sharding safe: routing many objects
//! through shared shards (one codec, one liveness array per shard, engines
//! behind one object map) must be *unobservable* in any single object's
//! data or I/O costs.

use proptest::prelude::*;

use sec_engine::{ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;
const SHARDS: usize = 3;

/// A random version history of `len`-byte objects: a base object plus up to
/// four per-version edit sets (byte position, xor mask), mask 0 excluded so
/// an edit always changes the byte (γ can still be 0 via empty edit sets).
fn history() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let len = 3 * 17usize; // three 17-byte blocks
    let base = prop::collection::vec(0u8..=255, len);
    let edits = prop::collection::vec(prop::collection::vec((0usize..len, 1u8..=255), 0..=6), 1..5);
    (base, edits).prop_map(|(base, edits)| {
        let mut versions = vec![base];
        for edit_set in edits {
            let mut next = versions.last().expect("non-empty").clone();
            for (pos, mask) in edit_set {
                next[pos] ^= mask;
            }
            versions.push(next);
        }
        versions
    })
}

/// Two to four objects, each with its own random history and a distinct
/// random id (routing is id-driven, so random ids exercise shard mixing).
fn object_set() -> impl Strategy<Value = Vec<(u64, Vec<Vec<u8>>)>> {
    prop::collection::vec((0u64..=u64::MAX, history()), 2..5).prop_map(|mut objects| {
        // Routing is keyed by id: duplicated ids would merge histories.
        objects.sort_by_key(|(id, _)| *id);
        objects.dedup_by_key(|(id, _)| *id);
        objects
    })
}

fn strategy_strategy() -> impl Strategy<Value = EncodingStrategy> {
    prop_oneof![
        Just(EncodingStrategy::BasicSec),
        Just(EncodingStrategy::OptimizedSec),
        Just(EncodingStrategy::ReversedSec),
        Just(EncodingStrategy::NonDifferential),
    ]
}

fn form_strategy() -> impl Strategy<Value = GeneratorForm> {
    prop_oneof![
        Just(GeneratorForm::Systematic),
        Just(GeneratorForm::NonSystematic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cluster_equals_independent_archives(
        objects in object_set(),
        strategy in strategy_strategy(),
        form in form_strategy(),
    ) {
        let config = ArchiveConfig::new(N, K, form, strategy).unwrap();
        let cluster = SecCluster::new(config, SHARDS).unwrap();

        // Interleave appends across objects version-by-version: routing must
        // keep the sequences apart no matter the arrival order.
        let rounds = objects.iter().map(|(_, vs)| vs.len()).max().unwrap();
        for round in 0..rounds {
            for (raw, vs) in &objects {
                if let Some(v) = vs.get(round) {
                    cluster.append_version(ObjectId(*raw), v).unwrap();
                }
            }
        }
        cluster.reset_metrics();

        let mut reported_reads = 0usize;
        let mut retrievals = 0usize;
        for (raw, vs) in &objects {
            let id = ObjectId(*raw);
            let mut reference = ByteVersionedArchive::new(config).unwrap();
            reference.append_all(vs).unwrap();
            prop_assert_eq!(cluster.version_count(id), Some(vs.len()));

            for l in 1..=vs.len() {
                let got = cluster.get_version(id, l).unwrap();
                let want = reference.retrieve_version(l).unwrap();
                prop_assert_eq!(
                    &*got.data, &want.data,
                    "{} {} object {:#x} version {}", strategy, form, raw, l
                );
                prop_assert_eq!(
                    got.io_reads, want.io_reads,
                    "{} {} object {:#x} version {}", strategy, form, raw, l
                );
                prop_assert!(!got.cached);
                reported_reads += got.io_reads;
                retrievals += 1;
            }

            // Prefix retrieval agrees per object as well.
            let got = cluster.get_prefix(id, vs.len()).unwrap();
            let want = reference.retrieve_prefix(vs.len()).unwrap();
            prop_assert_eq!(&got.versions, &want.versions);
            prop_assert_eq!(got.io_reads, want.io_reads);
            reported_reads += got.io_reads;
            retrievals += 1;
        }

        // Aggregated accounting: cluster totals must equal the sum of the
        // per-retrieval reports, and the per-shard node counters must sum to
        // the cluster totals.
        let m = cluster.metrics_snapshot();
        prop_assert_eq!(m.objects, objects.len());
        prop_assert_eq!(m.io.symbol_reads as usize, reported_reads);
        prop_assert_eq!(m.io.retrievals, retrievals as u64);
        prop_assert_eq!(m.io.failed_reads, 0);
        prop_assert_eq!(
            m.shards.iter().flat_map(|s| s.node_reads.iter()).sum::<u64>(),
            m.io.symbol_reads
        );
        let per_shard_objects: usize = m.shards.iter().map(|s| s.objects).sum();
        prop_assert_eq!(per_shard_objects, objects.len());
    }

    #[test]
    fn cached_cluster_serves_the_same_bytes(
        objects in object_set(),
        strategy in strategy_strategy(),
    ) {
        // With per-object caches the read *counts* legitimately drop to zero
        // on hits, but bytes must stay identical on every path.
        let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
        let cluster = SecCluster::with_cache(config, SHARDS, 2).unwrap();
        for (raw, vs) in &objects {
            cluster.append_all(ObjectId(*raw), vs).unwrap();
        }
        for (raw, vs) in &objects {
            let id = ObjectId(*raw);
            for (l, expect) in vs.iter().enumerate() {
                let cold = cluster.get_version(id, l + 1).unwrap();
                prop_assert_eq!(&*cold.data, expect, "object {:#x} version {}", raw, l + 1);
                let hot = cluster.get_version(id, l + 1).unwrap();
                prop_assert!(hot.cached, "object {:#x} version {} must hit its cache", raw, l + 1);
                prop_assert_eq!(hot.io_reads, 0);
                prop_assert_eq!(&*hot.data, expect);
            }
        }
        let stats = cluster.metrics_snapshot().cache;
        let total_versions: usize = objects.iter().map(|(_, vs)| vs.len()).sum();
        prop_assert!(stats.hits >= total_versions as u64);
    }
}
