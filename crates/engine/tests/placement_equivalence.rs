//! Property-based equivalence for **dispersed placement**: for any random
//! byte-version history, any strategy and either generator form, a dispersed
//! [`SecEngine`] must agree with both the single-threaded
//! [`ByteVersionedArchive`] reference and a [`ByteDistributedStore`] built
//! with [`PlacementStrategy::Dispersed`] — same bytes *and* the same
//! block-read accounting. Placement changes where blocks live, never what a
//! retrieval reads.

use proptest::prelude::*;

use sec_engine::SecEngine;
use sec_erasure::GeneratorForm;
use sec_store::{ByteDistributedStore, PlacementStrategy};
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;

/// A random version history of three-block objects: a base object plus up to
/// five per-version edit sets (byte position, xor mask), mask 0 excluded so
/// an edit always changes the byte (γ can still be 0 via empty edit sets).
fn history() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let len = 3 * 17usize; // three 17-byte blocks
    let base = prop::collection::vec(0u8..=255, len);
    let edits = prop::collection::vec(prop::collection::vec((0usize..len, 1u8..=255), 0..=6), 1..6);
    (base, edits).prop_map(|(base, edits)| {
        let mut versions = vec![base];
        for edit_set in edits {
            let mut next = versions.last().expect("non-empty").clone();
            for (pos, mask) in edit_set {
                next[pos] ^= mask;
            }
            versions.push(next);
        }
        versions
    })
}

fn strategy_strategy() -> impl Strategy<Value = EncodingStrategy> {
    prop_oneof![
        Just(EncodingStrategy::BasicSec),
        Just(EncodingStrategy::OptimizedSec),
        Just(EncodingStrategy::ReversedSec),
        Just(EncodingStrategy::NonDifferential),
    ]
}

fn form_strategy() -> impl Strategy<Value = GeneratorForm> {
    prop_oneof![
        Just(GeneratorForm::Systematic),
        Just(GeneratorForm::NonSystematic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dispersed_engine_equals_dispersed_store_and_reference(
        versions in history(),
        strategy in strategy_strategy(),
        form in form_strategy(),
    ) {
        let config = ArchiveConfig::new(N, K, form, strategy).unwrap();
        let mut reference = ByteVersionedArchive::new(config).unwrap();
        reference.append_all(&versions).unwrap();
        let store = ByteDistributedStore::new(&reference, PlacementStrategy::Dispersed);

        let engine = SecEngine::with_placement(config, PlacementStrategy::Dispersed, 0).unwrap();
        engine.append_all(&versions).unwrap();
        engine.reset_metrics();

        // The engine grew one fresh slab of n nodes per stored entry — the
        // same node space the dispersed store provisions up front.
        prop_assert_eq!(engine.node_count(), store.node_count());
        prop_assert_eq!(engine.node_count(), N * reference.stored_entry_count());
        prop_assert_eq!(engine.placement().strategy(), PlacementStrategy::Dispersed);

        let mut reported_reads = 0usize;
        for l in 1..=versions.len() {
            let got = engine.get_version(l).unwrap();
            let via_store = store.retrieve_version(&reference, l).unwrap();
            let via_archive = reference.retrieve_version(l).unwrap();
            prop_assert_eq!(&*got.data, &via_store.data, "{} {} version {}", strategy, form, l);
            prop_assert_eq!(&*got.data, &via_archive.data, "{} {} version {}", strategy, form, l);
            prop_assert_eq!(got.io_reads, via_store.io_reads, "{} {} version {}", strategy, form, l);
            prop_assert_eq!(got.io_reads, via_archive.io_reads, "{} {} version {}", strategy, form, l);
            prop_assert!(!got.cached);
            reported_reads += got.io_reads;
        }

        // Aggregate accounting holds across the grown node space: the sum of
        // the per-node read counters equals the per-retrieval reports.
        let m = engine.metrics_snapshot();
        prop_assert_eq!(m.nodes, engine.node_count());
        prop_assert_eq!(m.node_reads.len(), m.nodes);
        prop_assert_eq!(m.io.symbol_reads as usize, reported_reads);
        prop_assert_eq!(m.io.failed_reads, 0);
        prop_assert_eq!(m.node_reads.iter().sum::<u64>(), m.io.symbol_reads);

        // Prefix retrieval agrees with the reference as well.
        let got = engine.get_prefix(versions.len()).unwrap();
        let want = reference.retrieve_prefix(versions.len()).unwrap();
        prop_assert_eq!(&got.versions, &want.versions);
        prop_assert_eq!(got.io_reads, want.io_reads);
    }

    #[test]
    fn colocated_and_dispersed_engines_read_identically_when_healthy(
        versions in history(),
        strategy in strategy_strategy(),
    ) {
        // With every node alive, placement is invisible to the read path:
        // same bytes, same read counts, per version and per prefix.
        let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
        let colocated = SecEngine::with_placement(config, PlacementStrategy::Colocated, 0).unwrap();
        let dispersed = SecEngine::with_placement(config, PlacementStrategy::Dispersed, 0).unwrap();
        colocated.append_all(&versions).unwrap();
        dispersed.append_all(&versions).unwrap();
        for l in 1..=versions.len() {
            let c = colocated.get_version(l).unwrap();
            let d = dispersed.get_version(l).unwrap();
            prop_assert_eq!(&*c.data, &*d.data, "{} version {}", strategy, l);
            prop_assert_eq!(c.io_reads, d.io_reads, "{} version {}", strategy, l);
        }
        let c = colocated.get_prefix(versions.len()).unwrap();
        let d = dispersed.get_prefix(versions.len()).unwrap();
        prop_assert_eq!(&c.versions, &d.versions);
        prop_assert_eq!(c.io_reads, d.io_reads);
    }
}
