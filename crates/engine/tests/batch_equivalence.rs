//! Differential tests for the batch read entry points: `SecCluster::get_batch`
//! and `SecEngine::get_versions` must return byte-identical data and the
//! same per-request errors as a loop over the single-request calls, for
//! every encoding strategy, with and without a delta cache, and under
//! failures.

use std::sync::Arc;

use sec_engine::{ClusterError, ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_versioning::{ArchiveConfig, EncodingStrategy};

fn payload(id: u64, version: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (id as usize * 7 + version * 31 + i) as u8)
        .collect()
}

fn populated(strategy: EncodingStrategy, cache: usize) -> Arc<SecCluster> {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, strategy).expect("config");
    let cluster = Arc::new(SecCluster::with_cache(config, 4, cache).expect("cluster"));
    for id in 0..6u64 {
        let history: Vec<Vec<u8>> = (1..=5).map(|v| payload(id, v, 96)).collect();
        cluster.append_all(ObjectId(id), &history).expect("populate");
    }
    cluster
}

fn all_strategies() -> [EncodingStrategy; 4] {
    [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ]
}

/// A request mix with same-object runs, interleavings, repeats, and
/// per-request failures (bad versions, unknown objects).
fn request_mix() -> Vec<(ObjectId, usize)> {
    let mut requests = Vec::new();
    // A long same-object run (the amortized case), including repeats.
    for v in [1usize, 3, 3, 5, 2, 4, 1, 5] {
        requests.push((ObjectId(0), v));
    }
    // Interleaved objects (degrades to per-request routing).
    for v in 1..=5usize {
        for id in 1..4u64 {
            requests.push((ObjectId(id), v));
        }
    }
    // Error slots mixed in: invalid version, unknown object.
    requests.push((ObjectId(0), 0));
    requests.push((ObjectId(0), 99));
    requests.push((ObjectId(777), 1));
    // And valid work after the errors.
    requests.push((ObjectId(5), 4));
    requests.push((ObjectId(5), 4));
    requests
}

#[test]
fn get_batch_matches_single_calls_for_every_strategy() {
    for strategy in all_strategies() {
        for cache in [0usize, 4] {
            // Separate clusters so cache state can't leak between the
            // batched and the single-call runs.
            let batched = populated(strategy, cache);
            let singles = populated(strategy, cache);
            let requests = request_mix();
            let batch_results = batched.get_batch(&requests);
            assert_eq!(batch_results.len(), requests.len());
            for (&(id, version), result) in requests.iter().zip(&batch_results) {
                let single = singles.get_version(id, version);
                match (result, single) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(
                            *b.data, *s.data,
                            "{strategy:?} cache={cache} object {} version {version}",
                            id.0
                        );
                        assert_eq!(b.version, s.version);
                    }
                    (Err(b), Err(s)) => {
                        assert_eq!(
                            b, &s,
                            "{strategy:?} cache={cache} object {} version {version}",
                            id.0
                        );
                    }
                    (b, s) => panic!(
                        "{strategy:?} cache={cache} object {} version {version}: \
                         batch {b:?} vs single {s:?}",
                        id.0
                    ),
                }
            }
        }
    }
}

#[test]
fn batched_repeats_prime_the_cache_within_one_call() {
    // With a cache, a batch of identical requests decodes once: the first
    // slot pays reads, every later slot is an exact hit with zero reads.
    let cluster = populated(EncodingStrategy::BasicSec, 4);
    // Appends may have primed the cache; start the batch cold.
    cluster.clear_cache(ObjectId(2)).expect("clear cache");
    let requests = vec![(ObjectId(2), 3); 6];
    let results = cluster.get_batch(&requests);
    let first = results.first().and_then(|r| r.as_ref().ok()).expect("first ok");
    assert!(first.io_reads > 0, "first request must hit the nodes");
    for (i, result) in results.iter().enumerate().skip(1) {
        let retrieval = result.as_ref().expect("later ok");
        assert_eq!(retrieval.io_reads, 0, "request {i} should be a cache hit");
        assert!(retrieval.cached, "request {i} should report cached");
        assert_eq!(*retrieval.data, payload(2, 3, 96));
    }
}

#[test]
fn get_batch_under_node_failures_matches_single_calls() {
    let batched = populated(EncodingStrategy::BasicSec, 0);
    let singles = populated(EncodingStrategy::BasicSec, 0);
    for shard in 0..4usize {
        for node in 0..4usize {
            batched.fail_node(shard, node).expect("fail");
            singles.fail_node(shard, node).expect("fail");
        }
    }
    // Only 2 of 6 nodes live with k = 3: every read must fail — identically.
    let requests: Vec<(ObjectId, usize)> = (0..6u64).map(|id| (ObjectId(id), 1)).collect();
    for (&(id, version), result) in requests.iter().zip(batched.get_batch(&requests).iter()) {
        let single = singles.get_version(id, version);
        match (result, single) {
            (Err(b), Err(s)) => assert_eq!(b, &s, "object {}", id.0),
            (b, s) => panic!("object {}: batch {b:?} vs single {s:?}", id.0),
        }
    }
}

#[test]
fn empty_and_unknown_batches_are_well_behaved() {
    let cluster = populated(EncodingStrategy::BasicSec, 4);
    assert!(cluster.get_batch(&[]).is_empty());
    let unknown = cluster.get_batch(&[(ObjectId(999), 1), (ObjectId(999), 2)]);
    assert_eq!(unknown.len(), 2);
    for result in &unknown {
        assert!(matches!(
            result,
            Err(ClusterError::UnknownObject { object }) if *object == ObjectId(999)
        ));
    }
}
