//! Cross-shard chaos: shards are independent failure and concurrency
//! domains, so readers of objects on healthy shards must keep serving
//! *bit-exact* data with *bit-exact* read accounting while other shards are
//! concurrently failed, appended to, revived and repaired — even while an
//! entire other shard is down.
//!
//! This is the threaded counterpart of the `cluster_equivalence` proptest:
//! equivalence shows sharding is unobservable per object; this suite shows
//! the *isolation* claim holds under concurrency (readers and chaos touch
//! distinct shards and never block or corrupt each other).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use sec_engine::{ClusterError, ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_sim::SimRng;
use sec_store::StoreError;
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 6;
const K: usize = 3;
const SHARDS: usize = 4;
const READERS: usize = 6;

fn config() -> ArchiveConfig {
    ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap()
}

/// Eight versions of a 90-byte object with a mixed sparsity profile (two
/// sparse edits, an identical version, a two-block edit, a dense rewrite,
/// another sparse edit, two blocks). A pure function of the suite `seed`
/// and a per-object `salt`, so a failure's printed `SEC_SIM_SEED` replays
/// every object's exact byte history.
fn versions(seed: u64, salt: u8) -> Vec<Vec<u8>> {
    let mut rng = SimRng::new(seed ^ u64::from(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let v1: Vec<u8> = (0..90).map(|i| (i * 31 + 7) as u8 ^ salt).collect();
    let mut out = vec![v1];
    for gamma in [1usize, 1, 0, 2, 3, 1, 2] {
        let mut next = out.last().unwrap().clone();
        let mut blocks = [0usize, 1, 2];
        rng.shuffle(&mut blocks);
        for &block in &blocks[..gamma] {
            let position = block * 30 + rng.gen_range(30);
            next[position] ^= 1 + rng.gen_range(255) as u8;
        }
        out.push(next);
    }
    out
}

/// Finds an id (probing a salt) that routes to `shard`.
fn id_on_shard(cluster: &SecCluster, shard: usize, mut salt: u64) -> ObjectId {
    loop {
        let id = ObjectId(salt);
        if cluster.shard_of(id) == shard {
            return id;
        }
        salt = salt.wrapping_add(0x1000_0000_0100_0001);
    }
}

#[test]
fn readers_on_quiet_shards_stay_exact_while_other_shards_burn() {
    let seed = sec_sim::seed::resolve("cluster-chaos");
    let cluster = Arc::new(SecCluster::new(config(), SHARDS).unwrap());

    // Two reader objects on shards 0 and 1, two chaos objects on shards 2
    // and 3 — the routing is hash-driven, so probe for ids.
    let quiet: Vec<ObjectId> = (0..2).map(|s| id_on_shard(&cluster, s, s as u64)).collect();
    let burning: Vec<ObjectId> = (2..4).map(|s| id_on_shard(&cluster, s, s as u64)).collect();

    for (i, &id) in quiet.iter().enumerate() {
        cluster.append_all(id, &versions(seed, i as u8)).unwrap();
    }
    for (i, &id) in burning.iter().enumerate() {
        cluster.append_all(id, &versions(seed, 0x80 + i as u8)).unwrap();
    }

    // Single-threaded references for the quiet objects: bytes AND exact
    // block-read counts must hold throughout the chaos.
    type VersionExpectations = Vec<(Vec<u8>, usize)>;
    let expected: Vec<(ObjectId, VersionExpectations)> = quiet
        .iter()
        .enumerate()
        .map(|(i, &id)| {
            let mut reference = ByteVersionedArchive::new(config()).unwrap();
            reference.append_all(&versions(seed, i as u8)).unwrap();
            let per_version = (1..=reference.len())
                .map(|l| {
                    let r = reference.retrieve_version(l).unwrap();
                    (r.data, r.io_reads)
                })
                .collect();
            (id, per_version)
        })
        .collect();
    let expected = Arc::new(expected);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            let expected = Arc::clone(&expected);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut served = 0usize;
                let mut round = 0usize;
                while !stop.load(Ordering::Relaxed) || round < 8 {
                    let (id, per_version) = &expected[(t + round) % expected.len()];
                    let l = (t + round) % per_version.len() + 1;
                    let (want, want_reads) = &per_version[l - 1];
                    let got = cluster
                        .get_version(*id, l)
                        .unwrap_or_else(|e| panic!("reader {t}: quiet-shard read of v{l} failed: {e}"));
                    assert_eq!(*got.data, *want, "reader {t}: torn read of v{l}");
                    assert_eq!(
                        got.io_reads, *want_reads,
                        "reader {t}: chaos on other shards changed v{l}'s read cost"
                    );
                    served += 1;
                    round += 1;
                }
                served
            })
        })
        .collect();

    // Chaos confined to shards 2 and 3: failure bursts past n − k (the whole
    // shard at once), interleaved appends, revives and repairs.
    let chaos = {
        let cluster = Arc::clone(&cluster);
        let burning = burning.clone();
        thread::spawn(move || {
            for round in 0..12 {
                for (i, &id) in burning.iter().enumerate() {
                    let shard = 2 + i;
                    // Take the whole shard down — n failures, far beyond n−k.
                    for node in 0..N {
                        cluster.fail_node(shard, node).unwrap();
                    }
                    assert!(matches!(
                        cluster.get_version(id, 1),
                        Err(ClusterError::Engine(StoreError::Unrecoverable { .. }))
                    ));
                    for node in 0..N {
                        cluster.revive_node(shard, node).unwrap();
                    }
                    // Append under a single failure, then repair it.
                    let node = round % N;
                    cluster.fail_node(shard, node).unwrap();
                    let latest = cluster.version_count(id).unwrap();
                    let mut next = (*cluster.get_version(id, latest).unwrap().data).clone();
                    let edit = (round * 13) % next.len();
                    next[edit] ^= 0xC3;
                    cluster.append_version(id, &next).unwrap();
                    cluster.repair_node(shard, node).unwrap();
                }
            }
        })
    };

    chaos.join().expect("chaos thread panicked");
    stop.store(true, Ordering::Relaxed);
    let total_served: usize = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_served >= READERS * 8, "readers must have made progress");

    // Quiesced: every shard healthy, every object serves every version.
    let m = cluster.metrics_snapshot();
    assert_eq!(m.objects, 4);
    for shard in &m.shards {
        assert_eq!(shard.live_nodes, N, "chaos must leave every node repaired");
    }
    for (i, &id) in quiet.iter().enumerate() {
        for (l, want) in versions(seed, i as u8).iter().enumerate() {
            assert_eq!(*cluster.get_version(id, l + 1).unwrap().data, *want);
        }
    }
    for &id in &burning {
        let len = cluster.version_count(id).unwrap();
        assert_eq!(len, 8 + 12, "12 chaos rounds appended one version each");
        assert!(cluster.get_prefix(id, len).is_ok());
    }
    // The quiet shards never recorded a failed read.
    assert_eq!(m.shards[0].io.failed_reads, 0);
    assert_eq!(m.shards[1].io.failed_reads, 0);
}

#[test]
fn concurrent_appenders_on_distinct_objects_do_not_interleave_sequences() {
    // Many threads append to their own objects through the shared router;
    // per-object sequences must come out exactly as if appended alone.
    let seed = sec_sim::seed::resolve("cluster-chaos-appenders");
    let cluster = Arc::new(SecCluster::new(config(), SHARDS).unwrap());
    let writers: Vec<_> = (0..8u64)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            thread::spawn(move || {
                let id = ObjectId(t);
                let vs = versions(seed, t as u8);
                for v in &vs {
                    cluster.append_version(id, v).unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread panicked");
    }
    assert_eq!(cluster.object_count(), 8);
    for t in 0..8u64 {
        let id = ObjectId(t);
        let vs = versions(seed, t as u8);
        let got = cluster.get_prefix(id, vs.len()).unwrap();
        assert_eq!(
            got.versions, vs,
            "object {t}: sequence corrupted by concurrent appends"
        );
        // And the read accounting matches a solo reference archive.
        let mut reference = ByteVersionedArchive::new(config()).unwrap();
        reference.append_all(&vs).unwrap();
        assert_eq!(
            got.io_reads,
            reference.retrieve_prefix(vs.len()).unwrap().io_reads
        );
    }
}
