//! Seed resolution and replay.
//!
//! Every simulation run is a pure function of one `u64` seed. This module
//! owns the two ends of that contract: picking a fresh seed (and announcing
//! it) for exploratory runs, and honouring `SEC_SIM_SEED` to replay a
//! specific schedule bit-identically.
//!
//! Replay workflow: any failing run prints a line of the form
//! `SEC_SIM_SEED=0x…`; exporting that variable and re-running the same test
//! reproduces the failing interleaving exactly (see `docs/DST.md`).

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};

/// Name of the environment variable that pins the seed for replay.
pub const SEED_ENV: &str = "SEC_SIM_SEED";

/// Parses a seed string: decimal (`12345`) or hexadecimal with an `0x`
/// prefix (`0xDEAD_BEEF`; underscores allowed in either form).
pub fn parse(s: &str) -> Option<u64> {
    let s = s.trim().replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The seed pinned via [`SEED_ENV`], if any. An unparsable value is
/// reported and ignored rather than silently exploring a random schedule
/// the caller believed was pinned.
pub fn from_env() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    match parse(&raw) {
        Some(seed) => Some(seed),
        None => {
            eprintln!("sec-sim: ignoring unparsable {SEED_ENV}={raw:?} (want decimal or 0x-hex)");
            None
        }
    }
}

/// A fresh entropy-derived seed for exploratory runs. Uses the standard
/// library's per-process `RandomState` entropy (the crate has no external
/// dependencies), mixed per call so successive calls differ.
pub fn entropy() -> u64 {
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(0x5EC5_1377);
    hasher.finish()
}

/// Resolves the seed for a named simulation: the pinned [`SEED_ENV`] value
/// when set, a fresh entropy seed otherwise. Either way the seed is printed
/// to stderr (cargo shows captured output only for failing tests, so a
/// passing run stays quiet and a failing one always carries its seed).
pub fn resolve(label: &str) -> u64 {
    match from_env() {
        Some(seed) => {
            eprintln!("sec-sim[{label}]: replaying pinned {SEED_ENV}={seed:#018x}");
            seed
        }
        None => {
            let seed = entropy();
            eprintln!("sec-sim[{label}]: {SEED_ENV}={seed:#018x} (export to replay this run)");
            seed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse("12345"), Some(12345));
        assert_eq!(parse("0xff"), Some(255));
        assert_eq!(parse("0XFF"), Some(255));
        assert_eq!(parse("0xDEAD_BEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse("  42  "), Some(42));
        assert_eq!(parse("1_000"), Some(1000));
        assert_eq!(parse(""), None);
        assert_eq!(parse("0x"), None);
        assert_eq!(parse("zebra"), None);
    }

    #[test]
    fn entropy_seeds_vary() {
        // Two RandomStates virtually never collide; equality here would mean
        // entropy() is broken (constant), which is what we guard against.
        assert_ne!(entropy(), entropy());
    }
}
