//! `sim-sweep` — run the simulation properties over many seeds and report
//! the ones that fail.
//!
//! Built for the nightly CI sweep: exit code 0 when every seed passes,
//! 1 when any fails (the failing seeds are printed and optionally written
//! to a file for upload as an artifact).
//!
//! ```text
//! sim-sweep [--seeds N] [--root SEED] [--out PATH]
//! ```
//!
//! * `--seeds N` — number of seeds per property (default 200).
//! * `--root SEED` — derive the per-run seeds from this root instead of
//!   fresh entropy (decimal or 0x-hex), making the whole sweep replayable.
//! * `--out PATH` — append one `<property> SEC_SIM_SEED=0x…` line per
//!   failure to `PATH`.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sec_sim::harness::{ClusterSim, ClusterSimOptions, EngineSim, SimOptions};
use sec_sim::rng::SimRng;
use sec_sim::{seed, SEED_ENV};
use sec_versioning::EncodingStrategy;

/// One named property the sweep drives: build a sim from a seed, run a
/// seed-derived schedule, panic on divergence.
struct Property {
    name: &'static str,
    run: fn(u64),
}

const SCHEDULE_STEPS: usize = 60;

fn engine_walk(seed: u64, options: SimOptions) {
    let mut rng = SimRng::new(seed);
    let mut sim = EngineSim::new(options, rng.fork());
    for _ in 0..SCHEDULE_STEPS {
        let op = sim.random_op(&mut rng);
        sim.step(&op);
    }
    sim.step(&sec_sim::Op::CheckMetrics);
}

fn cluster_walk(seed: u64, options: ClusterSimOptions) {
    let mut rng = SimRng::new(seed);
    let mut sim = ClusterSim::new(options, rng.fork());
    for _ in 0..SCHEDULE_STEPS {
        let op = sim.random_op(&mut rng);
        sim.step(&op);
    }
    sim.step(&sec_sim::ClusterOp::CheckMetrics);
}

const PROPERTIES: &[Property] = &[
    Property {
        name: "engine-colocated-strict",
        run: |seed| engine_walk(seed, SimOptions::strict(5, 3, 64)),
    },
    Property {
        name: "engine-dispersed-strict",
        run: |seed| {
            let mut options = SimOptions::strict(5, 3, 48);
            options.placement = sec_engine::PlacementStrategy::Dispersed;
            engine_walk(seed, options);
        },
    },
    Property {
        name: "engine-optimized-cached",
        run: |seed| {
            let mut options = SimOptions::strict(6, 3, 64);
            options.encoding = EncodingStrategy::OptimizedSec;
            options.cache_capacity = 4;
            options.checkpoint_spacing = 2;
            engine_walk(seed, options);
        },
    },
    Property {
        name: "engine-checkpointed-strict",
        run: |seed| {
            let mut options = SimOptions::strict(5, 3, 64);
            options.checkpoint_spacing = 2;
            engine_walk(seed, options);
        },
    },
    Property {
        name: "engine-read-faults",
        run: |seed| {
            let mut options = SimOptions::strict(5, 3, 64);
            options.read_fault_percent = 10;
            options.rebuild_abort_percent = 10;
            engine_walk(seed, options);
        },
    },
    Property {
        name: "cluster-colocated-strict",
        run: |seed| cluster_walk(seed, ClusterSimOptions::strict(5, 3, 2, 3, 48)),
    },
    Property {
        name: "cluster-read-faults",
        run: |seed| {
            let mut options = ClusterSimOptions::strict(5, 3, 2, 3, 48);
            options.read_fault_percent = 10;
            cluster_walk(seed, options);
        },
    },
    Property {
        name: "cluster-cached-checkpointed",
        run: |seed| {
            let mut options = ClusterSimOptions::strict(5, 3, 2, 3, 48);
            options.cache_capacity = 3;
            options.checkpoint_spacing = 2;
            cluster_walk(seed, options);
        },
    },
];

struct Args {
    seeds: usize,
    root: Option<u64>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 200,
        root: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad --seeds value {v:?}"))?;
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                args.root = Some(seed::parse(&v).ok_or_else(|| format!("bad --root value {v:?}"))?);
            }
            "--out" => {
                args.out = Some(it.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: sim-sweep [--seeds N] [--root SEED] [--out PATH]".to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let root = args.root.unwrap_or_else(seed::entropy);
    println!(
        "sim-sweep: {} seeds per property from root {root:#018x}",
        args.seeds
    );

    // Failing runs may leave a panic trace; keep the default hook so the
    // assertion text (which names the diverged invariant) stays visible.
    let mut failures: Vec<(String, u64)> = Vec::new();
    for property in PROPERTIES {
        let mut rng = SimRng::new(root ^ splitmix_label(property.name));
        let mut failed_here = 0usize;
        for _ in 0..args.seeds {
            let seed = rng.next_u64();
            if catch_unwind(AssertUnwindSafe(|| (property.run)(seed))).is_err() {
                eprintln!(
                    "sim-sweep: {} FAILED — replay with {SEED_ENV}={seed:#018x}",
                    property.name
                );
                failures.push((property.name.to_string(), seed));
                failed_here += 1;
                if failed_here >= 5 {
                    eprintln!("sim-sweep: {}: 5 failures, moving on", property.name);
                    break;
                }
            }
        }
        println!(
            "sim-sweep: {:<28} {}",
            property.name,
            if failed_here == 0 { "ok" } else { "FAILED" }
        );
    }

    if let Some(path) = &args.out {
        let mut lines = String::new();
        for (name, seed) in &failures {
            lines.push_str(&format!("{name} {SEED_ENV}={seed:#018x}\n"));
        }
        if let Err(e) = std::fs::File::create(path).and_then(|mut f| f.write_all(lines.as_bytes())) {
            eprintln!("sim-sweep: could not write {path}: {e}");
        }
    }

    if failures.is_empty() {
        println!("sim-sweep: all properties passed");
    } else {
        println!("sim-sweep: {} failing seed(s)", failures.len());
        std::process::exit(1);
    }
}

/// Stable per-property seed-stream separation (FNV-1a over the name).
fn splitmix_label(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
