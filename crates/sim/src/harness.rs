//! The deterministic scheduler: explicit operation steps over a real
//! [`SecEngine`] / [`SecCluster`], checked against single-threaded oracles.
//!
//! Instead of racing OS threads, a simulation is a *schedule*: a sequence of
//! [`Op`]s (append, read, fail, revive, repair, metrics) applied one at a
//! time to the system under test. Concurrency is reintroduced exactly where
//! the production code exposes it — the buggify fault points — via
//! *interleaving windows*: a repair step can carry operations that the
//! installed [`SimHook`] runs inside `engine::repair::window` /
//! `cluster::repair::window`, i.e. between a repair's rebuild and its
//! liveness commit, where no locks are held. Every step is checked against
//! a model (the exact version bytes and liveness the system should hold)
//! and against the single-threaded `ByteDistributedStore` oracle for read
//! results and I/O accounting.
//!
//! Schedules are pure functions of a seed; see `crate::explore` for the
//! random-walk and exhaustive drivers and `docs/DST.md` for the replay
//! workflow.

use std::cell::RefCell;
use std::rc::Rc;

use sec_engine::{ClusterError, ObjectId, PlacementStrategy, SecCluster, SecEngine};
use sec_erasure::GeneratorForm;
use sec_store::fault::{self, HookGuard};
use sec_store::{ByteDistributedStore, StoreError};
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, CheckpointPolicy, EncodingStrategy};

use crate::clock::{EventQueue, VirtualClock};
use crate::hook::SimHook;
use crate::rng::SimRng;

/// One scheduled operation against the system under test.
#[derive(Debug, Clone)]
pub enum Op {
    /// Append the next version: the previous version (or a fixed base
    /// object for the first append) with each `(position, delta)` edit
    /// XORed in. Deltas of zero are coerced to 1 so every edit is real.
    Append {
        /// Byte edits defining the new version's delta from its parent.
        edits: Vec<(usize, u8)>,
    },
    /// Retrieve version `version` (1-based) and check it against the model
    /// and the store oracle.
    Get {
        /// The version to read.
        version: usize,
    },
    /// Retrieve versions `1..=upto` and check them against the model.
    GetPrefix {
        /// The last version of the prefix.
        upto: usize,
    },
    /// Fail a node (by placement node id).
    Fail {
        /// The node to fail.
        node: usize,
    },
    /// Revive a node without repair (crash recovery).
    Revive {
        /// The node to revive.
        node: usize,
    },
    /// Fail a node now and schedule its revival `ticks` of virtual time
    /// later (delivered by the next `AdvanceClock` that reaches the due
    /// tick).
    FailFor {
        /// The node to fail.
        node: usize,
        /// Virtual ticks until the scheduled revive.
        ticks: u64,
    },
    /// Advance the virtual clock, delivering any due scheduled events.
    AdvanceClock {
        /// Ticks to advance by.
        ticks: u64,
    },
    /// Repair a node, optionally interleaving `window` operations inside
    /// the repair's lock-free window (between rebuild and liveness commit).
    Repair {
        /// The node to repair.
        node: usize,
        /// Operations the hook runs inside the repair window, in order.
        window: Vec<WindowOp>,
    },
    /// Drain the I/O counters (`reset_metrics`) and fold them into the
    /// exactly-once accounting check.
    ResetMetrics,
    /// Drop every cached decoded version, forcing subsequent reads back to
    /// the nodes (a no-op with caching disabled).
    ResetCache,
    /// Assert the metrics snapshot agrees with the model (versions, node
    /// counts, liveness, exactly-once retrieval accounting).
    CheckMetrics,
}

/// An operation run *inside* a repair's interleaving window by the fault
/// hook. Restricted to operations that are safe at the window sites (no
/// locks are held there, so everything the engine offers is safe; the
/// restriction to this enum is what keeps window schedules replayable).
#[derive(Debug, Clone)]
pub enum WindowOp {
    /// Fail a node mid-repair.
    Fail(usize),
    /// Revive a node mid-repair.
    Revive(usize),
    /// Append a version mid-repair (edits as [`Op::Append`]).
    Append(Vec<(usize, u8)>),
    /// Read a version mid-repair (1-based; checked for byte equality).
    Get(usize),
}

/// What a window action actually did, recorded by the hook's closures and
/// replayed onto the model after the repair returns.
enum WindowRecord {
    Fail(usize),
    Revive(usize),
    Append(Vec<u8>),
    Get {
        version: usize,
        outcome: Result<Vec<u8>, StoreError>,
    },
}

/// Construction parameters for [`EngineSim`].
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Codeword length `n`.
    pub n: usize,
    /// Dimension `k`.
    pub k: usize,
    /// Encoding strategy of the archive under test.
    pub encoding: EncodingStrategy,
    /// Placement strategy of the engine under test.
    pub placement: PlacementStrategy,
    /// Byte length of every version.
    pub object_len: usize,
    /// Engine delta-cache capacity (0 disables; strict I/O accounting
    /// requires 0).
    pub cache_capacity: usize,
    /// Checkpoint spacing for the archive under test *and* the reference
    /// (0 disables). Strict-compatible: both sides share the layout, so
    /// I/O accounting stays bit-identical.
    pub checkpoint_spacing: usize,
    /// Probability (percent) that a node read spuriously fails
    /// (`store::node::read` buggify site).
    pub read_fault_percent: u32,
    /// Probability (percent) that a repair aborts between stage and commit
    /// (`engine::rebuild::abort` buggify site).
    pub rebuild_abort_percent: u32,
}

impl SimOptions {
    /// A strict (fault-free, cache-free) colocated BasicSec setup, the
    /// configuration under which engine behaviour must match the oracle
    /// bit-for-bit including I/O counts.
    pub fn strict(n: usize, k: usize, object_len: usize) -> Self {
        Self {
            n,
            k,
            encoding: EncodingStrategy::BasicSec,
            placement: PlacementStrategy::Colocated,
            object_len,
            cache_capacity: 0,
            checkpoint_spacing: 0,
            read_fault_percent: 0,
            rebuild_abort_percent: 0,
        }
    }

    fn is_strict(&self) -> bool {
        self.read_fault_percent == 0 && self.rebuild_abort_percent == 0 && self.cache_capacity == 0
    }
}

/// A clock-driven event (scheduled by [`Op::FailFor`]).
#[derive(Debug)]
enum DueEvent {
    Revive(usize),
}

/// Deterministic simulation of one [`SecEngine`] against its model.
///
/// The model is authoritative: exact version bytes, per-node liveness and
/// failure epochs, and expected metric counters. Divergence panics with a
/// message naming the step — under `crate::explore::random_walk` that
/// panic carries the replay seed.
pub struct EngineSim {
    engine: Rc<SecEngine>,
    hook: Rc<SimHook>,
    _hook_guard: HookGuard,
    options: SimOptions,
    /// Oracle archive holding the same versions as the engine.
    reference: ByteVersionedArchive,
    /// Model version bytes, index `l-1` = version `l`.
    versions: Vec<Vec<u8>>,
    /// Model liveness by placement node id.
    live: Vec<bool>,
    /// Model failure epochs by placement node id.
    epochs: Vec<u64>,
    clock: VirtualClock,
    due: EventQueue<DueEvent>,
    expected_retrievals: u64,
    drained_retrievals: u64,
    steps: u64,
}

impl std::fmt::Debug for EngineSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSim")
            .field("options", &self.options)
            .field("versions", &self.versions.len())
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl EngineSim {
    /// Builds the engine under test and installs the simulation's fault
    /// hook (seeded from `hook_rng`) on the current thread.
    ///
    /// # Panics
    ///
    /// Panics on an invalid code configuration — simulations are tests, and
    /// a bad setup should fail loudly at construction.
    pub fn new(options: SimOptions, hook_rng: SimRng) -> Self {
        let config = ArchiveConfig::new(
            options.n,
            options.k,
            GeneratorForm::NonSystematic,
            options.encoding,
        )
        .expect("sim: invalid archive config")
        .with_checkpoints(CheckpointPolicy::every(options.checkpoint_spacing));
        let engine = SecEngine::with_placement(config, options.placement, options.cache_capacity)
            .expect("sim: engine construction failed");
        let reference = ByteVersionedArchive::new(config).expect("sim: reference construction failed");
        let hook = Rc::new(SimHook::new(hook_rng));
        hook.set_probability("store::node::read", options.read_fault_percent);
        hook.set_probability("engine::rebuild::abort", options.rebuild_abort_percent);
        let guard = hook.install();
        let node_count = engine.node_count();
        Self {
            engine: Rc::new(engine),
            hook,
            _hook_guard: guard,
            options,
            reference,
            versions: Vec::new(),
            live: vec![true; node_count],
            epochs: vec![0; node_count],
            clock: VirtualClock::new(),
            due: EventQueue::new(),
            expected_retrievals: 0,
            drained_retrievals: 0,
            steps: 0,
        }
    }

    /// The fault hook, for tests that assert on site traces.
    pub fn hook(&self) -> &Rc<SimHook> {
        &self.hook
    }

    /// Number of versions appended so far.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Number of nodes the placement currently addresses.
    pub fn node_count(&self) -> usize {
        self.live.len()
    }

    /// The model's liveness for `node` (out-of-range reads as dead).
    pub fn model_alive(&self, node: usize) -> bool {
        self.live.get(node).copied().unwrap_or(false)
    }

    /// Bytes of model version `l` (1-based), if appended.
    pub fn model_version(&self, l: usize) -> Option<&[u8]> {
        self.versions.get(l.wrapping_sub(1)).map(Vec::as_slice)
    }

    /// Draws a random next operation for walk-style exploration. Append
    /// count is capped so long schedules keep bounded cost.
    pub fn random_op(&self, rng: &mut SimRng) -> Op {
        if self.versions.is_empty() {
            return Op::Append {
                edits: random_edits(rng, self.options.object_len),
            };
        }
        let nodes = self.node_count();
        let versions = self.versions.len();
        match rng.gen_range(100) {
            0..=19 if versions < 24 => Op::Append {
                edits: random_edits(rng, self.options.object_len),
            },
            0..=39 => Op::Get {
                version: rng.gen_range(versions) + 1,
            },
            40..=51 => Op::GetPrefix {
                upto: rng.gen_range(versions) + 1,
            },
            52..=63 => Op::Fail {
                node: rng.gen_range(nodes),
            },
            64..=73 => Op::Revive {
                node: rng.gen_range(nodes),
            },
            74..=85 => {
                let node = rng.gen_range(nodes);
                let mut window = Vec::new();
                for _ in 0..rng.gen_range(3) {
                    window.push(self.random_window_op(rng));
                }
                Op::Repair { node, window }
            }
            86..=90 => Op::FailFor {
                node: rng.gen_range(nodes),
                ticks: 1 + rng.gen_range(5) as u64,
            },
            91..=95 => Op::AdvanceClock {
                ticks: 1 + rng.gen_range(5) as u64,
            },
            96 => Op::ResetMetrics,
            97 => Op::ResetCache,
            _ => Op::CheckMetrics,
        }
    }

    fn random_window_op(&self, rng: &mut SimRng) -> WindowOp {
        let nodes = self.node_count();
        match rng.gen_range(10) {
            0..=3 => WindowOp::Fail(rng.gen_range(nodes)),
            4..=5 => WindowOp::Revive(rng.gen_range(nodes)),
            6..=7 if self.versions.len() < 24 => {
                WindowOp::Append(random_edits(rng, self.options.object_len))
            }
            _ => WindowOp::Get(rng.gen_range(self.versions.len()) + 1),
        }
    }

    /// Applies one operation and checks every invariant it touches.
    ///
    /// # Panics
    ///
    /// Panics when the engine diverges from the model or the oracle — that
    /// panic *is* the simulation's failure signal.
    pub fn step(&mut self, op: &Op) {
        self.steps += 1;
        let step = self.steps;
        match op {
            Op::Append { edits } => self.do_append(edits),
            Op::Get { version } => self.do_get(*version),
            Op::GetPrefix { upto } => self.do_get_prefix(*upto),
            Op::Fail { node } => self.do_fail(*node),
            Op::Revive { node } => self.do_revive(*node),
            Op::FailFor { node, ticks } => {
                self.do_fail(*node);
                self.due
                    .schedule(self.clock.now().saturating_add(*ticks), DueEvent::Revive(*node));
            }
            Op::AdvanceClock { ticks } => {
                let now = self.clock.advance(*ticks);
                while let Some(DueEvent::Revive(node)) = self.due.pop_due(now) {
                    self.do_revive(node);
                }
            }
            Op::Repair { node, window } => self.do_repair(*node, window),
            Op::ResetMetrics => {
                let m = self.engine.reset_metrics();
                self.drained_retrievals += m.io.retrievals;
            }
            Op::ResetCache => self.engine.clear_cache(),
            Op::CheckMetrics => self.check_metrics(step),
        }
    }

    /// Runs a whole schedule, then a final metrics check.
    pub fn run(&mut self, schedule: &[Op]) {
        for op in schedule {
            self.step(op);
        }
        self.check_metrics(self.steps);
    }

    fn do_append(&mut self, edits: &[(usize, u8)]) {
        let bytes = next_version(
            self.versions.last().map(Vec::as_slice),
            self.options.object_len,
            edits,
        );
        self.engine
            .append_version(&bytes)
            .unwrap_or_else(|e| panic!("step {}: engine append failed: {e}", self.steps));
        self.apply_append_to_model(bytes);
        assert_eq!(
            self.engine.len(),
            self.versions.len(),
            "step {}: version count diverged",
            self.steps
        );
    }

    fn apply_append_to_model(&mut self, bytes: Vec<u8>) {
        fault::with_suspended(|| {
            self.reference
                .append_version(&bytes)
                .unwrap_or_else(|e| panic!("step {}: reference append failed: {e}", self.steps));
        });
        self.versions.push(bytes);
        // Dispersed placement grows the node space with each stored entry;
        // fresh nodes are live in epoch 0.
        let node_count = self.engine.node_count();
        while self.live.len() < node_count {
            self.live.push(true);
            self.epochs.push(0);
        }
    }

    /// The single-threaded oracle: a fresh store over the reference archive
    /// with the model's failures applied. Always evaluated with fault
    /// points suspended so injected faults never perturb expected results.
    fn oracle<R>(&self, f: impl FnOnce(&ByteDistributedStore) -> R) -> R {
        fault::with_suspended(|| {
            let store = ByteDistributedStore::new(&self.reference, self.options.placement);
            for (node, live) in self.live.iter().enumerate() {
                if !live {
                    store.fail_node(node).unwrap_or_else(|e| {
                        panic!("step {}: oracle fail_node({node}): {e}", self.steps)
                    });
                }
            }
            f(&store)
        })
    }

    fn do_get(&mut self, version: usize) {
        self.expected_retrievals += 1;
        let engine_result = self.engine.get_version(version);
        let oracle_result = self.oracle(|store| store.retrieve_version(&self.reference, version));
        let step = self.steps;
        match (&engine_result, &oracle_result) {
            (Ok(got), Ok(want)) => {
                assert_eq!(
                    *got.data, want.data,
                    "step {step}: get_version({version}) bytes diverged from oracle"
                );
                let model = self.model_version(version).unwrap_or_else(|| {
                    panic!("step {step}: get_version({version}) succeeded for a version the model lacks")
                });
                assert_eq!(
                    *got.data, model,
                    "step {step}: get_version({version}) bytes diverged from model"
                );
                if self.options.is_strict() {
                    assert_eq!(
                        got.io_reads, want.io_reads,
                        "step {step}: get_version({version}) I/O accounting diverged from oracle"
                    );
                    assert!(!got.cached, "step {step}: cache hit with caching disabled");
                }
            }
            (Err(engine_err), Err(oracle_err)) => {
                if self.options.cache_capacity == 0 {
                    assert_eq!(
                        engine_err, oracle_err,
                        "step {step}: get_version({version}) failed on both sides with different errors"
                    );
                } else {
                    // A nearest-base walk anchors on a cached version, so a
                    // failing read can surface at a different entry than the
                    // oracle's from-scratch walk; the error kind must agree.
                    assert_eq!(
                        std::mem::discriminant(engine_err),
                        std::mem::discriminant(oracle_err),
                        "step {step}: get_version({version}) failed on both sides with different \
                         error kinds ({engine_err} vs {oracle_err})"
                    );
                }
            }
            (Ok(got), Err(oracle_err)) => {
                // A cache hit legitimately serves a version the cache-free
                // oracle cannot reach past the current failures; anything
                // else is divergence.
                assert!(
                    got.cached,
                    "step {step}: engine served get_version({version}) uncached but the oracle \
                     fails with {oracle_err}"
                );
                assert_eq!(
                    Some(got.data.as_slice()),
                    self.model_version(version),
                    "step {step}: cached get_version({version}) bytes diverged from model"
                );
            }
            (Err(engine_err), Ok(_)) => {
                // With read faults armed the engine may fail a read the
                // fault-free oracle serves; without them this is divergence.
                assert!(
                    !self.options.is_strict(),
                    "step {step}: oracle serves get_version({version}) but the engine fails with {engine_err}"
                );
                assert!(
                    matches!(engine_err, StoreError::Unrecoverable { .. }),
                    "step {step}: injected read faults must surface as Unrecoverable, got {engine_err}"
                );
            }
        }
    }

    fn do_get_prefix(&mut self, upto: usize) {
        self.expected_retrievals += 1;
        let engine_result = self.engine.get_prefix(upto);
        // The oracle for prefix reads is recoverability of every version in
        // the prefix (byte equality comes from the model); `retrieve_version`
        // per version keeps the oracle single-threaded and fault-free.
        let oracle_ok =
            self.oracle(|store| (1..=upto).all(|l| store.retrieve_version(&self.reference, l).is_ok()));
        let step = self.steps;
        match engine_result {
            Ok(prefix) => {
                assert_eq!(
                    prefix.versions.len(),
                    upto,
                    "step {step}: get_prefix({upto}) length"
                );
                if self.options.is_strict() {
                    assert!(
                        !prefix.cached,
                        "step {step}: get_prefix({upto}) cache hit with caching disabled"
                    );
                }
                for (idx, got) in prefix.versions.iter().enumerate() {
                    assert_eq!(
                        got.as_slice(),
                        self.model_version(idx + 1).unwrap_or_else(|| panic!(
                            "step {step}: get_prefix({upto}) returned version {} the model lacks",
                            idx + 1
                        )),
                        "step {step}: get_prefix({upto}) bytes diverged from model at version {}",
                        idx + 1
                    );
                }
            }
            Err(e) => {
                if self.options.is_strict() {
                    assert!(
                        !oracle_ok,
                        "step {step}: oracle serves the full prefix but get_prefix({upto}) failed with {e}"
                    );
                }
                assert!(
                    matches!(e, StoreError::Unrecoverable { .. }),
                    "step {step}: get_prefix({upto}) failed with unexpected error {e}"
                );
            }
        }
    }

    fn do_fail(&mut self, node: usize) {
        self.engine
            .fail_node(node)
            .unwrap_or_else(|e| panic!("step {}: fail_node({node}): {e}", self.steps));
        self.model_fail(node);
    }

    fn model_fail(&mut self, node: usize) {
        if let (Some(live), Some(epoch)) = (self.live.get_mut(node), self.epochs.get_mut(node)) {
            *live = false;
            *epoch += 1;
        }
    }

    fn do_revive(&mut self, node: usize) {
        self.engine
            .revive_node(node)
            .unwrap_or_else(|e| panic!("step {}: revive_node({node}): {e}", self.steps));
        if let Some(live) = self.live.get_mut(node) {
            *live = true;
        }
    }

    /// Whether the model says rebuilding `node` is impossible right now:
    /// its slab has fewer than `k` *other* live nodes (and at least one
    /// stored entry to rebuild).
    fn model_repair_blocked(&self, node: usize) -> bool {
        if self.versions.is_empty() {
            return false;
        }
        let n = self.options.n;
        let slab_base = match self.options.placement {
            PlacementStrategy::Colocated => 0,
            PlacementStrategy::Dispersed => (node / n) * n,
        };
        let live_others = (slab_base..slab_base + n)
            .filter(|&p| p != node && self.live.get(p).copied().unwrap_or(false))
            .count();
        live_others < self.options.k
    }

    fn do_repair(&mut self, node: usize, window: &[WindowOp]) {
        let step = self.steps;
        let snapshot_epoch = self.epochs.get(node).copied().unwrap_or(0);
        let records: Rc<RefCell<Vec<WindowRecord>>> = Rc::new(RefCell::new(Vec::new()));
        // Precompute window-append bytes: actions execute as a queue prefix,
        // so append j sees exactly the versions of appends 0..j.
        let mut chain = self.versions.last().cloned();
        for op in window {
            match op {
                WindowOp::Fail(target) => {
                    let engine = self.engine.clone();
                    let records = records.clone();
                    let target = *target;
                    self.hook.queue_window_action(move || {
                        let _ = engine.fail_node(target);
                        records.borrow_mut().push(WindowRecord::Fail(target));
                    });
                }
                WindowOp::Revive(target) => {
                    let engine = self.engine.clone();
                    let records = records.clone();
                    let target = *target;
                    self.hook.queue_window_action(move || {
                        let _ = engine.revive_node(target);
                        records.borrow_mut().push(WindowRecord::Revive(target));
                    });
                }
                WindowOp::Append(edits) => {
                    let bytes = next_version(chain.as_deref(), self.options.object_len, edits);
                    chain = Some(bytes.clone());
                    let engine = self.engine.clone();
                    let records = records.clone();
                    self.hook.queue_window_action(move || {
                        engine
                            .append_version(&bytes)
                            .unwrap_or_else(|e| panic!("window append failed: {e}"));
                        records.borrow_mut().push(WindowRecord::Append(bytes));
                    });
                }
                WindowOp::Get(version) => {
                    let engine = self.engine.clone();
                    let records = records.clone();
                    let version = *version;
                    self.hook.queue_window_action(move || {
                        let outcome = engine.get_version(version).map(|r| (*r.data).clone());
                        records.borrow_mut().push(WindowRecord::Get { version, outcome });
                    });
                }
            }
        }
        self.hook.arm_window("engine::repair::window");
        let result = self.engine.repair_node(node);
        // Actions whose window never fired simply did not happen.
        drop(self.hook.disarm_window());

        // Linearize the executed window actions into the model (they all
        // happened before the repair's liveness commit).
        let mut window_touched_liveness = false;
        for record in records.take() {
            match record {
                WindowRecord::Fail(target) => {
                    window_touched_liveness = true;
                    self.model_fail(target);
                }
                WindowRecord::Revive(target) => {
                    window_touched_liveness = true;
                    if let Some(live) = self.live.get_mut(target) {
                        *live = true;
                    }
                }
                WindowRecord::Append(bytes) => self.apply_append_to_model(bytes),
                WindowRecord::Get { version, outcome } => {
                    self.expected_retrievals += 1;
                    if let Ok(bytes) = outcome {
                        assert_eq!(
                            Some(bytes.as_slice()),
                            self.model_version(version),
                            "step {step}: window get({version}) bytes diverged from model"
                        );
                    }
                }
            }
        }

        let raced = self.epochs.get(node).copied().unwrap_or(0) != snapshot_epoch;
        match result {
            Ok(_) => {
                // The satellite-1 regression: a repair must never revive a
                // node whose newest failure its rebuild did not see.
                assert!(
                    !raced,
                    "step {step}: LOST FAILURE — repair_node({node}) revived a node that failed \
                     mid-repair (epoch {snapshot_epoch} → {})",
                    self.epochs.get(node).copied().unwrap_or(0)
                );
                if let Some(live) = self.live.get_mut(node) {
                    *live = true;
                }
            }
            Err(StoreError::RepairRaced { node: raced_node }) => {
                assert_eq!(raced_node, node, "step {step}: RepairRaced names the wrong node");
                assert!(
                    raced,
                    "step {step}: repair_node({node}) reported RepairRaced but the model saw no \
                     mid-repair failure"
                );
                // The node keeps whatever liveness the window left it.
            }
            Err(StoreError::Unrecoverable { .. }) => {
                // Legitimate when too few live sources remain. In a strict
                // run whose window never revived nodes, liveness only
                // shrank, so the model must agree the rebuild is blocked.
                if self.options.is_strict() && !window_touched_liveness {
                    assert!(
                        self.model_repair_blocked(node),
                        "step {step}: repair_node({node}) says unrecoverable but the model has \
                         ≥ k live sources"
                    );
                }
            }
            Err(e) => panic!("step {step}: repair_node({node}) failed unexpectedly: {e}"),
        }
        // Either way the engine's visible liveness must match the model.
        self.assert_liveness(step);
    }

    fn assert_liveness(&self, step: u64) {
        for (node, want) in self.live.iter().enumerate() {
            let got = self
                .engine
                .is_node_alive(node)
                .unwrap_or_else(|e| panic!("step {step}: is_node_alive({node}): {e}"));
            assert_eq!(
                got, *want,
                "step {step}: liveness of node {node} diverged (engine {got}, model {want})"
            );
        }
    }

    fn check_metrics(&self, step: u64) {
        let m = self.engine.metrics_snapshot();
        assert_eq!(
            m.versions,
            self.versions.len(),
            "step {step}: metrics.versions diverged"
        );
        assert_eq!(m.nodes, self.live.len(), "step {step}: metrics.nodes diverged");
        let live = self.live.iter().filter(|&&l| l).count();
        assert_eq!(m.live_nodes, live, "step {step}: metrics.live_nodes diverged");
        assert_eq!(
            m.io.retrievals + self.drained_retrievals,
            self.expected_retrievals,
            "step {step}: retrieval accounting lost or duplicated increments across resets"
        );
        self.assert_liveness(step);
    }
}

/// Construction parameters for [`ClusterSim`].
#[derive(Debug, Clone)]
pub struct ClusterSimOptions {
    /// Codeword length `n`.
    pub n: usize,
    /// Dimension `k`.
    pub k: usize,
    /// Encoding strategy for every object.
    pub encoding: EncodingStrategy,
    /// Shard count.
    pub shards: usize,
    /// Number of distinct objects the schedule may touch.
    pub objects: usize,
    /// Byte length of every version of every object.
    pub object_len: usize,
    /// Per-engine delta-cache capacity (0 disables; strict I/O accounting
    /// requires 0).
    pub cache_capacity: usize,
    /// Checkpoint spacing shared by every object's archive and reference
    /// (0 disables). Strict-compatible, as for [`SimOptions`].
    pub checkpoint_spacing: usize,
    /// Probability (percent) of spurious node-read failures.
    pub read_fault_percent: u32,
}

impl ClusterSimOptions {
    /// A strict (fault-free, cache-free) colocated cluster setup.
    pub fn strict(n: usize, k: usize, shards: usize, objects: usize, object_len: usize) -> Self {
        Self {
            n,
            k,
            encoding: EncodingStrategy::BasicSec,
            shards,
            objects,
            object_len,
            cache_capacity: 0,
            checkpoint_spacing: 0,
            read_fault_percent: 0,
        }
    }

    fn is_strict(&self) -> bool {
        self.read_fault_percent == 0 && self.cache_capacity == 0
    }
}

/// One scheduled operation against a [`SecCluster`] (colocated placement:
/// shard-shared liveness, the geometry the cluster chaos suite exercises).
#[derive(Debug, Clone)]
pub enum ClusterOp {
    /// Append the next version of object `object` (index into the sim's
    /// object table).
    Append {
        /// Object index.
        object: usize,
        /// Byte edits as [`Op::Append`].
        edits: Vec<(usize, u8)>,
    },
    /// Retrieve and check one version of an object.
    Get {
        /// Object index.
        object: usize,
        /// 1-based version.
        version: usize,
    },
    /// Fail a node of a shard's shared group.
    Fail {
        /// Shard index.
        shard: usize,
        /// Node position within the shard's group.
        node: usize,
    },
    /// Revive a node of a shard's shared group.
    Revive {
        /// Shard index.
        shard: usize,
        /// Node position within the shard's group.
        node: usize,
    },
    /// Repair a node, optionally interleaving window operations inside the
    /// cluster repair's lock-free windows (between per-object rebuilds).
    Repair {
        /// Shard index.
        shard: usize,
        /// Node position within the shard's group.
        node: usize,
        /// Operations run inside `cluster::repair::window`, in order, one
        /// per rebuilt object.
        window: Vec<ClusterWindowOp>,
    },
    /// Drain cluster I/O counters into the exactly-once accounting.
    ResetMetrics,
    /// Drop an object's cached decoded versions (a no-op with caching
    /// disabled).
    ResetCache {
        /// Object index.
        object: usize,
    },
    /// Assert the cluster metrics snapshot against the model.
    CheckMetrics,
}

/// An operation run inside a cluster repair's interleaving window.
#[derive(Debug, Clone)]
pub enum ClusterWindowOp {
    /// Fail a node of a shard mid-repair.
    Fail(usize, usize),
    /// Revive a node of a shard mid-repair.
    Revive(usize, usize),
    /// Append to an object mid-repair.
    Append(usize, Vec<(usize, u8)>),
    /// Read version of an object mid-repair.
    Get(usize, usize),
}

enum ClusterWindowRecord {
    Fail(usize, usize),
    Revive(usize, usize),
    Append(usize, Vec<u8>),
    Get {
        object: usize,
        version: usize,
        outcome: Result<Vec<u8>, ClusterError>,
    },
}

struct ObjectModel {
    id: ObjectId,
    shard: usize,
    reference: ByteVersionedArchive,
    versions: Vec<Vec<u8>>,
}

/// Deterministic simulation of one colocated [`SecCluster`] against its
/// model, mirroring [`EngineSim`] across shards and objects.
pub struct ClusterSim {
    cluster: Rc<SecCluster>,
    hook: Rc<SimHook>,
    _hook_guard: HookGuard,
    options: ClusterSimOptions,
    objects: Vec<ObjectModel>,
    /// Model liveness per shard group.
    live: Vec<Vec<bool>>,
    /// Model failure epochs per shard group.
    epochs: Vec<Vec<u64>>,
    expected_retrievals: u64,
    drained_retrievals: u64,
    steps: u64,
}

impl std::fmt::Debug for ClusterSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("options", &self.options)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl ClusterSim {
    /// Builds the cluster under test and installs the simulation's fault
    /// hook on the current thread.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (bad code parameters or zero
    /// shards) — simulations are tests and must fail loudly at setup.
    pub fn new(options: ClusterSimOptions, hook_rng: SimRng) -> Self {
        let config = ArchiveConfig::new(
            options.n,
            options.k,
            GeneratorForm::NonSystematic,
            options.encoding,
        )
        .expect("sim: invalid archive config")
        .with_checkpoints(CheckpointPolicy::every(options.checkpoint_spacing));
        let cluster = SecCluster::with_cache(config, options.shards, options.cache_capacity)
            .expect("sim: cluster construction failed");
        let hook = Rc::new(SimHook::new(hook_rng));
        hook.set_probability("store::node::read", options.read_fault_percent);
        let guard = hook.install();
        let objects = (0..options.objects)
            .map(|i| {
                let id = ObjectId(i as u64);
                ObjectModel {
                    id,
                    shard: cluster.shard_of(id),
                    reference: ByteVersionedArchive::new(config)
                        .expect("sim: reference construction failed"),
                    versions: Vec::new(),
                }
            })
            .collect();
        Self {
            cluster: Rc::new(cluster),
            hook,
            _hook_guard: guard,
            live: vec![vec![true; options.n]; options.shards],
            epochs: vec![vec![0; options.n]; options.shards],
            options,
            objects,
            expected_retrievals: 0,
            drained_retrievals: 0,
            steps: 0,
        }
    }

    /// The fault hook, for tests that assert on site traces.
    pub fn hook(&self) -> &Rc<SimHook> {
        &self.hook
    }

    /// Versions appended so far to object `object`.
    pub fn object_versions(&self, object: usize) -> usize {
        self.objects.get(object).map_or(0, |o| o.versions.len())
    }

    /// The shard object `object` routes to.
    pub fn object_shard(&self, object: usize) -> usize {
        self.objects.get(object).map_or(0, |o| o.shard)
    }

    /// Model liveness of `node` on `shard`.
    pub fn model_alive(&self, shard: usize, node: usize) -> bool {
        self.live
            .get(shard)
            .and_then(|group| group.get(node))
            .copied()
            .unwrap_or(false)
    }

    /// Draws a random next operation for walk-style exploration.
    pub fn random_op(&self, rng: &mut SimRng) -> ClusterOp {
        let object = rng.gen_range(self.objects.len());
        let versions = self.object_versions(object);
        if versions == 0 {
            return ClusterOp::Append {
                object,
                edits: random_edits(rng, self.options.object_len),
            };
        }
        let shard = rng.gen_range(self.options.shards);
        let node = rng.gen_range(self.options.n);
        match rng.gen_range(100) {
            0..=19 if versions < 16 => ClusterOp::Append {
                object,
                edits: random_edits(rng, self.options.object_len),
            },
            0..=44 => ClusterOp::Get {
                object,
                version: rng.gen_range(versions) + 1,
            },
            45..=58 => ClusterOp::Fail { shard, node },
            59..=70 => ClusterOp::Revive { shard, node },
            71..=89 => {
                let mut window = Vec::new();
                for _ in 0..rng.gen_range(3) {
                    window.push(self.random_window_op(rng));
                }
                ClusterOp::Repair { shard, node, window }
            }
            90..=92 => ClusterOp::ResetMetrics,
            93..=94 => ClusterOp::ResetCache { object },
            _ => ClusterOp::CheckMetrics,
        }
    }

    fn random_window_op(&self, rng: &mut SimRng) -> ClusterWindowOp {
        let shard = rng.gen_range(self.options.shards);
        let node = rng.gen_range(self.options.n);
        let object = rng.gen_range(self.objects.len());
        let versions = self.object_versions(object);
        match rng.gen_range(10) {
            0..=3 => ClusterWindowOp::Fail(shard, node),
            4..=5 => ClusterWindowOp::Revive(shard, node),
            6..=7 if versions > 0 && versions < 16 => {
                ClusterWindowOp::Append(object, random_edits(rng, self.options.object_len))
            }
            _ if versions > 0 => ClusterWindowOp::Get(object, rng.gen_range(versions) + 1),
            _ => ClusterWindowOp::Fail(shard, node),
        }
    }

    /// Applies one operation and checks every invariant it touches.
    ///
    /// # Panics
    ///
    /// Panics when the cluster diverges from the model or the oracle.
    pub fn step(&mut self, op: &ClusterOp) {
        self.steps += 1;
        match op {
            ClusterOp::Append { object, edits } => self.do_append(*object, edits),
            ClusterOp::Get { object, version } => self.do_get(*object, *version),
            ClusterOp::Fail { shard, node } => self.do_fail(*shard, *node),
            ClusterOp::Revive { shard, node } => self.do_revive(*shard, *node),
            ClusterOp::Repair { shard, node, window } => self.do_repair(*shard, *node, window),
            ClusterOp::ResetMetrics => {
                let m = self.cluster.reset_metrics();
                self.drained_retrievals += m.io.retrievals;
            }
            ClusterOp::ResetCache { object } => self.do_reset_cache(*object),
            ClusterOp::CheckMetrics => self.check_metrics(),
        }
    }

    /// Runs a whole schedule, then a final metrics check.
    pub fn run(&mut self, schedule: &[ClusterOp]) {
        for op in schedule {
            self.step(op);
        }
        self.check_metrics();
    }

    fn do_append(&mut self, object: usize, edits: &[(usize, u8)]) {
        let step = self.steps;
        let Some(model) = self.objects.get(object) else {
            panic!("step {step}: append to unknown object index {object}");
        };
        let bytes = next_version(
            model.versions.last().map(Vec::as_slice),
            self.options.object_len,
            edits,
        );
        self.cluster
            .append_version(model.id, &bytes)
            .unwrap_or_else(|e| panic!("step {step}: cluster append to object {object} failed: {e}"));
        self.apply_append_to_model(object, bytes);
    }

    fn apply_append_to_model(&mut self, object: usize, bytes: Vec<u8>) {
        let step = self.steps;
        if let Some(model) = self.objects.get_mut(object) {
            fault::with_suspended(|| {
                model
                    .reference
                    .append_version(&bytes)
                    .unwrap_or_else(|e| panic!("step {step}: reference append failed: {e}"));
            });
            model.versions.push(bytes);
        }
    }

    fn do_get(&mut self, object: usize, version: usize) {
        let step = self.steps;
        self.expected_retrievals += 1;
        let Some(model) = self.objects.get(object) else {
            panic!("step {step}: get on unknown object index {object}");
        };
        let engine_result = self.cluster.get_version(model.id, version);
        let oracle_result = fault::with_suspended(|| {
            let store = ByteDistributedStore::colocated(&model.reference);
            if let Some(group) = self.live.get(model.shard) {
                for (node, live) in group.iter().enumerate() {
                    if !live {
                        store
                            .fail_node(node)
                            .unwrap_or_else(|e| panic!("step {step}: oracle fail_node({node}): {e}"));
                    }
                }
            }
            store.retrieve_version(&model.reference, version)
        });
        match (&engine_result, &oracle_result) {
            (Ok(got), Ok(want)) => {
                assert_eq!(
                    *got.data, want.data,
                    "step {step}: object {object} get({version}) bytes diverged from oracle"
                );
                if self.options.is_strict() {
                    assert_eq!(
                        got.io_reads, want.io_reads,
                        "step {step}: object {object} get({version}) I/O accounting diverged"
                    );
                    assert!(
                        !got.cached,
                        "step {step}: object {object} get({version}) cache hit with caching disabled"
                    );
                }
            }
            (Err(ClusterError::Engine(engine_err)), Err(oracle_err)) => {
                if self.options.cache_capacity == 0 {
                    assert_eq!(
                        engine_err, oracle_err,
                        "step {step}: object {object} get({version}) errors diverged"
                    );
                } else {
                    // As for [`EngineSim::do_get`]: a cached base shifts the
                    // entry a failing walk reports; the kind must agree.
                    assert_eq!(
                        std::mem::discriminant(engine_err),
                        std::mem::discriminant(oracle_err),
                        "step {step}: object {object} get({version}) error kinds diverged \
                         ({engine_err} vs {oracle_err})"
                    );
                }
            }
            (Ok(got), Err(oracle_err)) => {
                // As in [`EngineSim::do_get`]: a cache hit legitimately
                // serves a version the cache-free oracle cannot reach past
                // the current failures; anything else is divergence.
                assert!(
                    got.cached,
                    "step {step}: cluster served object {object} get({version}) uncached but the \
                     oracle fails with {oracle_err}"
                );
                assert_eq!(
                    Some(got.data.as_slice()),
                    model.versions.get(version.wrapping_sub(1)).map(Vec::as_slice),
                    "step {step}: cached object {object} get({version}) bytes diverged from model"
                );
            }
            (Err(engine_err), Ok(_)) => {
                assert!(
                    !self.options.is_strict(),
                    "step {step}: oracle serves object {object} get({version}) but the cluster \
                     fails with {engine_err}"
                );
            }
            (Err(engine_err), Err(_)) => {
                panic!("step {step}: object {object} get({version}) failed with non-engine error {engine_err}")
            }
        }
    }

    fn do_reset_cache(&mut self, object: usize) {
        let step = self.steps;
        let Some(model) = self.objects.get(object) else {
            panic!("step {step}: reset cache on unknown object index {object}");
        };
        match self.cluster.clear_cache(model.id) {
            Ok(()) => assert!(
                !model.versions.is_empty(),
                "step {step}: clear_cache(object {object}) succeeded before any append"
            ),
            Err(ClusterError::UnknownObject { .. }) => assert!(
                model.versions.is_empty(),
                "step {step}: clear_cache(object {object}) lost a known object"
            ),
            Err(e) => panic!("step {step}: clear_cache(object {object}) failed unexpectedly: {e}"),
        }
    }

    fn do_fail(&mut self, shard: usize, node: usize) {
        self.cluster
            .fail_node(shard, node)
            .unwrap_or_else(|e| panic!("step {}: fail_node({shard}, {node}): {e}", self.steps));
        self.model_fail(shard, node);
    }

    fn model_fail(&mut self, shard: usize, node: usize) {
        if let Some(group) = self.live.get_mut(shard) {
            if let Some(live) = group.get_mut(node) {
                *live = false;
            }
        }
        if let Some(group) = self.epochs.get_mut(shard) {
            if let Some(epoch) = group.get_mut(node) {
                *epoch += 1;
            }
        }
    }

    fn do_revive(&mut self, shard: usize, node: usize) {
        self.cluster
            .revive_node(shard, node)
            .unwrap_or_else(|e| panic!("step {}: revive_node({shard}, {node}): {e}", self.steps));
        self.model_revive(shard, node);
    }

    fn model_revive(&mut self, shard: usize, node: usize) {
        if let Some(group) = self.live.get_mut(shard) {
            if let Some(live) = group.get_mut(node) {
                *live = true;
            }
        }
    }

    fn do_repair(&mut self, shard: usize, node: usize, window: &[ClusterWindowOp]) {
        let step = self.steps;
        let snapshot_epoch = self.shard_epoch(shard, node);
        let records: Rc<RefCell<Vec<ClusterWindowRecord>>> = Rc::new(RefCell::new(Vec::new()));
        let mut chains: Vec<Option<Vec<u8>>> =
            self.objects.iter().map(|o| o.versions.last().cloned()).collect();
        for op in window {
            match op {
                ClusterWindowOp::Fail(s, nd) => {
                    let cluster = self.cluster.clone();
                    let records = records.clone();
                    let (s, nd) = (*s, *nd);
                    self.hook.queue_window_action(move || {
                        let _ = cluster.fail_node(s, nd);
                        records.borrow_mut().push(ClusterWindowRecord::Fail(s, nd));
                    });
                }
                ClusterWindowOp::Revive(s, nd) => {
                    let cluster = self.cluster.clone();
                    let records = records.clone();
                    let (s, nd) = (*s, *nd);
                    self.hook.queue_window_action(move || {
                        let _ = cluster.revive_node(s, nd);
                        records.borrow_mut().push(ClusterWindowRecord::Revive(s, nd));
                    });
                }
                ClusterWindowOp::Append(object, edits) => {
                    let object = *object;
                    let Some(id) = self.objects.get(object).map(|o| o.id) else {
                        continue;
                    };
                    let Some(chain) = chains.get_mut(object) else {
                        continue;
                    };
                    let bytes = next_version(chain.as_deref(), self.options.object_len, edits);
                    *chain = Some(bytes.clone());
                    let cluster = self.cluster.clone();
                    let records = records.clone();
                    self.hook.queue_window_action(move || {
                        cluster
                            .append_version(id, &bytes)
                            .unwrap_or_else(|e| panic!("window append failed: {e}"));
                        records
                            .borrow_mut()
                            .push(ClusterWindowRecord::Append(object, bytes));
                    });
                }
                ClusterWindowOp::Get(object, version) => {
                    let object = *object;
                    let version = *version;
                    let Some(id) = self.objects.get(object).map(|o| o.id) else {
                        continue;
                    };
                    let cluster = self.cluster.clone();
                    let records = records.clone();
                    self.hook.queue_window_action(move || {
                        let outcome = cluster.get_version(id, version).map(|r| (*r.data).clone());
                        records.borrow_mut().push(ClusterWindowRecord::Get {
                            object,
                            version,
                            outcome,
                        });
                    });
                }
            }
        }
        self.hook.arm_window("cluster::repair::window");
        let result = self.cluster.repair_node(shard, node);
        drop(self.hook.disarm_window());

        let mut window_touched_liveness = false;
        for record in records.take() {
            match record {
                ClusterWindowRecord::Fail(s, nd) => {
                    window_touched_liveness = true;
                    self.model_fail(s, nd);
                }
                ClusterWindowRecord::Revive(s, nd) => {
                    window_touched_liveness = true;
                    self.model_revive(s, nd);
                }
                ClusterWindowRecord::Append(object, bytes) => self.apply_append_to_model(object, bytes),
                ClusterWindowRecord::Get {
                    object,
                    version,
                    outcome,
                } => {
                    self.expected_retrievals += 1;
                    if let Ok(bytes) = outcome {
                        let model = self
                            .objects
                            .get(object)
                            .and_then(|o| o.versions.get(version.wrapping_sub(1)));
                        assert_eq!(
                            Some(bytes.as_slice()),
                            model.map(Vec::as_slice),
                            "step {step}: window get(object {object}, {version}) diverged from model"
                        );
                    }
                }
            }
        }

        let raced = self.shard_epoch(shard, node) != snapshot_epoch;
        match result {
            Ok(_) => {
                assert!(
                    !raced,
                    "step {step}: LOST FAILURE — repair_node({shard}, {node}) revived a node that \
                     failed mid-repair"
                );
                self.model_revive(shard, node);
            }
            Err(ClusterError::Engine(StoreError::RepairRaced { node: raced_node })) => {
                assert_eq!(raced_node, node, "step {step}: RepairRaced names the wrong node");
                assert!(
                    raced,
                    "step {step}: repair_node({shard}, {node}) reported RepairRaced but the model \
                     saw no mid-repair failure"
                );
            }
            Err(ClusterError::Engine(StoreError::Unrecoverable { .. })) => {
                if self.options.is_strict() && !window_touched_liveness {
                    let live_others = self
                        .live
                        .get(shard)
                        .map(|group| group.iter().enumerate().filter(|&(p, &l)| p != node && l).count())
                        .unwrap_or(0);
                    assert!(
                        live_others < self.options.k,
                        "step {step}: repair_node({shard}, {node}) says unrecoverable but the \
                         model has ≥ k live sources"
                    );
                }
            }
            Err(e) => panic!("step {step}: repair_node({shard}, {node}) failed unexpectedly: {e}"),
        }
        self.assert_liveness(step);
    }

    fn shard_epoch(&self, shard: usize, node: usize) -> u64 {
        self.epochs
            .get(shard)
            .and_then(|group| group.get(node))
            .copied()
            .unwrap_or(0)
    }

    fn assert_liveness(&self, step: u64) {
        for (shard, group) in self.live.iter().enumerate() {
            for (node, want) in group.iter().enumerate() {
                let got = self
                    .cluster
                    .is_node_alive(shard, node)
                    .unwrap_or_else(|e| panic!("step {step}: is_node_alive({shard}, {node}): {e}"));
                assert_eq!(
                    got, *want,
                    "step {step}: liveness of shard {shard} node {node} diverged"
                );
            }
        }
    }

    fn check_metrics(&self) {
        let step = self.steps;
        let m = self.cluster.metrics_snapshot();
        let versions: usize = self.objects.iter().map(|o| o.versions.len()).sum();
        let admitted = self.objects.iter().filter(|o| !o.versions.is_empty()).count();
        assert_eq!(
            m.versions, versions,
            "step {step}: cluster metrics.versions diverged"
        );
        assert_eq!(
            m.objects, admitted,
            "step {step}: cluster metrics.objects diverged"
        );
        assert_eq!(
            m.nodes,
            self.options.shards * self.options.n,
            "step {step}: cluster metrics.nodes diverged"
        );
        let live: usize = self.live.iter().map(|g| g.iter().filter(|&&l| l).count()).sum();
        assert_eq!(
            m.live_nodes, live,
            "step {step}: cluster metrics.live_nodes diverged"
        );
        assert_eq!(
            m.io.retrievals + self.drained_retrievals,
            self.expected_retrievals,
            "step {step}: cluster retrieval accounting lost or duplicated increments across resets"
        );
        self.assert_liveness(step);
    }
}

/// The next version in a chain: the parent's bytes (or the fixed base
/// object when there is no parent) with each `(position, delta)` edit XORed
/// in; zero deltas are coerced to 1 so every edit changes its byte.
pub fn next_version(parent: Option<&[u8]>, object_len: usize, edits: &[(usize, u8)]) -> Vec<u8> {
    let mut bytes: Vec<u8> = match parent {
        Some(p) => p.to_vec(),
        None => (0..object_len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
            .collect(),
    };
    if bytes.is_empty() {
        return bytes;
    }
    for &(position, delta) in edits {
        let position = position % bytes.len();
        let delta = if delta == 0 { 1 } else { delta };
        if let Some(byte) = bytes.get_mut(position) {
            *byte ^= delta;
        }
    }
    bytes
}

/// Random edit list for version generation: 0–3 single-byte XOR edits,
/// matching the paper's sparse-update model (small γ per version).
pub fn random_edits(rng: &mut SimRng, object_len: usize) -> Vec<(usize, u8)> {
    let count = rng.gen_range(4);
    (0..count)
        .map(|_| (rng.gen_range(object_len.max(1)), (rng.next_u64() % 255) as u8 + 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_version_applies_xor_edits() {
        let base = next_version(None, 8, &[]);
        assert_eq!(base.len(), 8);
        let child = next_version(Some(&base), 8, &[(3, 0x0F), (3, 0x0F), (5, 1)]);
        // Double-XOR cancels; position 5 differs.
        assert_eq!(child[3], base[3]);
        assert_ne!(child[5], base[5]);
        assert_eq!(next_version(Some(&base), 8, &[]), base);
    }

    #[test]
    fn zero_deltas_still_edit() {
        let base = next_version(None, 4, &[]);
        let child = next_version(Some(&base), 4, &[(1, 0)]);
        assert_ne!(child, base);
    }
}
