//! The simulator's seeded random number generator.
//!
//! One fixed, dependency-free algorithm (SplitMix64) so a seed means the
//! same schedule forever: the generator is part of the replay contract, and
//! swapping it would silently invalidate every pinned seed in the test
//! suite and every failing seed in a CI artifact.

/// A deterministic SplitMix64 generator. Cheap to fork: any draw can seed a
/// child stream, which is how the harness gives each simulated actor its
/// own independent randomness from one root seed.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator whose entire future is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..bound`. The modulo bias is below 2⁻⁵⁰ for every bound
    /// the simulator uses (all far under 2¹⁴), which is irrelevant for
    /// schedule exploration.
    ///
    /// `bound` must be non-zero; a zero bound is a harness bug and panics
    /// (test-only code, never compiled into the serving stack).
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be non-zero");
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `percent`/100.
    pub fn chance_percent(&mut self, percent: u32) -> bool {
        (self.next_u64() % 100) < u64::from(percent)
    }

    /// A uniformly drawn element of `choices`, which must be non-empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        let idx = self.gen_range(choices.len());
        // This indexing cannot fail (idx < len), but stay panic-free anyway:
        // fall back to the first element, which gen_range guarantees exists.
        choices.get(idx).unwrap_or(&choices[0])
    }

    /// Fisher–Yates shuffle of `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i + 1);
            items.swap(i, j);
        }
    }

    /// An independent child generator seeded from this one's stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-answer test pinning the algorithm: SplitMix64 from seed 0.
        let mut rng = SimRng::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::new(7);
        for bound in 1..40 {
            for _ in 0..50 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(9);
        let mut items: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = SimRng::new(5);
        let mut root2 = SimRng::new(5);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), root1.next_u64());
    }
}
