//! # sec-sim — deterministic simulation harness for the SEC stack
//!
//! Chaos found the bugs; this crate makes them replayable. Instead of
//! racing OS threads and hoping the scheduler cooperates, a simulation is
//! a *schedule*: a seed-derived sequence of explicit operations (append,
//! read, fail, revive, repair, metrics) applied one at a time to a real
//! [`sec_engine::SecEngine`] or [`sec_engine::SecCluster`], with
//! concurrency reintroduced exactly where the production code exposes it —
//! the `sec_store::fault` buggify sites compiled in behind the
//! `sim-faults` feature.
//!
//! The pieces:
//!
//! * [`rng::SimRng`] — a tiny seeded SplitMix64 generator; every schedule
//!   is a pure function of one `u64` seed.
//! * [`seed`] — seed resolution and the `SEC_SIM_SEED` replay contract.
//! * [`clock`] — virtual time (a counter, never the wall clock).
//! * [`hook::SimHook`] — the installed fault hook: seeded buggify
//!   decisions, site tracing, and queued window actions that interleave
//!   operations inside lock-free repair windows.
//! * [`harness`] — [`harness::EngineSim`] / [`harness::ClusterSim`], the
//!   schedulers that apply operations and check every step against a
//!   model and the single-threaded store oracle.
//! * [`explore`] — seeded random walks (with failing-seed printing) and
//!   exhaustive interleaving of short windows.
//!
//! Replay: any failing run prints `SEC_SIM_SEED=0x…`; export it and rerun
//! the same test to reproduce the interleaving bit-identically. See
//! `docs/DST.md` for the full workflow and the buggify site catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod explore;
pub mod harness;
pub mod hook;
pub mod rng;
pub mod seed;

pub use clock::{EventQueue, VirtualClock};
pub use explore::{interleavings, random_walk, MAX_EXHAUSTIVE_STEPS};
pub use harness::{ClusterOp, ClusterSim, ClusterSimOptions, EngineSim, Op, SimOptions, WindowOp};
pub use hook::SimHook;
pub use rng::SimRng;
pub use seed::SEED_ENV;
