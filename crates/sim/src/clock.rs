//! Virtual time.
//!
//! The simulator never reads a wall clock: time is a counter the scheduler
//! advances explicitly, so a schedule that depends on "later" (a node down
//! for `t` ticks, a repair due at tick `d`) replays identically from its
//! seed on any machine at any speed.

use std::cell::Cell;

/// A monotonically advancing virtual clock measured in abstract ticks.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<u64>,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now.get()
    }

    /// Advances the clock by `ticks` and returns the new time. Saturates at
    /// `u64::MAX` rather than wrapping: virtual time never goes backwards.
    pub fn advance(&self, ticks: u64) -> u64 {
        let next = self.now.get().saturating_add(ticks);
        self.now.set(next);
        next
    }
}

/// A deadline queue over virtual time: events become due as the clock
/// advances. Ties fire in insertion order, so schedules stay deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `(due_tick, insertion_seq, event)`, kept sorted on pop.
    pending: Vec<(u64, u64, E)>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            pending: Vec::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to become due at tick `due`.
    pub fn schedule(&mut self, due: u64, event: E) {
        self.pending.push((due, self.next_seq, event));
        self.next_seq += 1;
    }

    /// Removes and returns the earliest event due at or before `now`
    /// (insertion order breaks ties), or `None` when nothing is due.
    pub fn pop_due(&mut self, now: u64) -> Option<E> {
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, (due, _, _))| *due <= now)
            .min_by_key(|(_, (due, seq, _))| (*due, *seq))
            .map(|(idx, _)| idx)?;
        Some(self.pending.remove(idx).2)
    }

    /// Number of events not yet due or popped.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(5), 5);
        assert_eq!(clock.advance(0), 5);
        assert_eq!(clock.advance(u64::MAX), u64::MAX);
    }

    #[test]
    fn events_fire_in_deadline_then_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(10, "late");
        q.schedule(5, "early-a");
        q.schedule(5, "early-b");
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(7), Some("early-a"));
        assert_eq!(q.pop_due(7), Some("early-b"));
        assert_eq!(q.pop_due(7), None);
        assert_eq!(q.pop_due(10), Some("late"));
        assert!(q.is_empty());
    }
}
