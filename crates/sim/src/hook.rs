//! The simulator's [`FaultHook`]: seeded buggify decisions, site tracing,
//! and queued window actions.
//!
//! Production code (store, engine, cluster) calls `sec_store::fault` at
//! named sites; this hook is what a simulation installs to answer. It does
//! three jobs:
//!
//! * **buggify** — fire the fault at a site with a seeded per-site
//!   probability, so fault schedules replay from the run's seed;
//! * **trace** — count every site visit, so tests can assert the paths
//!   they meant to exercise (e.g. each `OrderedRwLock` rank) really ran;
//! * **windows** — hold a queue of actions and run one per visit of an
//!   *armed* site, which is how the scheduler interleaves operations inside
//!   lock-free windows like `cluster::repair::window`.
//!
//! Window actions run with all fault points masked (see
//! `sec_store::fault`): an action that drives engine operations cannot
//! recurse into this hook or trip nested faults.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::rng::SimRng;
use sec_store::fault::{self, FaultHook, Site};

/// A queued window action: an arbitrary closure, typically driving engine
/// operations and recording their outcomes somewhere shared.
type WindowAction = Box<dyn FnOnce()>;

/// The simulation's fault hook. Construct, configure probabilities, wrap in
/// an [`Rc`], and [`install`](SimHook::install).
pub struct SimHook {
    rng: RefCell<SimRng>,
    /// Per-site fire probability in percent; absent sites never fire.
    probabilities: RefCell<BTreeMap<Site, u32>>,
    /// Visit count per site ([`FaultHook::buggify`] and
    /// [`FaultHook::reached`] both count).
    visits: RefCell<BTreeMap<Site, u64>>,
    /// Total faults fired so far.
    fired: Cell<u64>,
    /// Site whose visits consume queued window actions.
    armed: Cell<Option<Site>>,
    window: RefCell<Vec<WindowAction>>,
}

impl std::fmt::Debug for SimHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHook")
            .field("probabilities", &self.probabilities.borrow())
            .field("fired", &self.fired.get())
            .field("armed", &self.armed.get())
            .finish_non_exhaustive()
    }
}

impl SimHook {
    /// A hook with no fault probabilities and nothing armed: it only traces.
    pub fn new(rng: SimRng) -> Self {
        Self {
            rng: RefCell::new(rng),
            probabilities: RefCell::new(BTreeMap::new()),
            visits: RefCell::new(BTreeMap::new()),
            fired: Cell::new(0),
            armed: Cell::new(None),
            window: RefCell::new(Vec::new()),
        }
    }

    /// Installs this hook on the current thread (see `sec_store::fault`);
    /// the returned guard uninstalls it on drop.
    pub fn install(self: &Rc<Self>) -> fault::HookGuard {
        fault::install(self.clone() as Rc<dyn FaultHook>)
    }

    /// Sets the probability (percent) that [`FaultHook::buggify`] fires at
    /// `site`. Zero removes the site.
    pub fn set_probability(&self, site: Site, percent: u32) {
        let mut probs = self.probabilities.borrow_mut();
        if percent == 0 {
            probs.remove(site);
        } else {
            probs.insert(site, percent.min(100));
        }
    }

    /// How many times any fault has fired.
    pub fn faults_fired(&self) -> u64 {
        self.fired.get()
    }

    /// How many times `site` has been visited (traced).
    pub fn visits(&self, site: Site) -> u64 {
        self.visits.borrow().get(site).copied().unwrap_or(0)
    }

    /// Snapshot of every traced site and its visit count.
    pub fn trace(&self) -> Vec<(Site, u64)> {
        self.visits.borrow().iter().map(|(s, c)| (*s, *c)).collect()
    }

    /// Arms `site`: each subsequent visit of it pops and runs one queued
    /// window action. Queue actions with [`SimHook::queue_window_action`].
    pub fn arm_window(&self, site: Site) {
        self.armed.set(Some(site));
    }

    /// Disarms the window site and returns the actions that never ran (their
    /// windows were not visited often enough). The caller decides whether to
    /// run them after the fact or drop them.
    pub fn disarm_window(&self) -> Vec<WindowAction> {
        self.armed.set(None);
        std::mem::take(&mut *self.window.borrow_mut())
    }

    /// Queues an action for the armed window site. Actions run in queue
    /// order, one per site visit.
    pub fn queue_window_action(&self, action: impl FnOnce() + 'static) {
        self.window.borrow_mut().push(Box::new(action));
    }

    fn record_visit(&self, site: Site) {
        *self.visits.borrow_mut().entry(site).or_insert(0) += 1;
    }
}

impl FaultHook for SimHook {
    fn buggify(&self, site: Site) -> bool {
        self.record_visit(site);
        let percent = self.probabilities.borrow().get(site).copied().unwrap_or(0);
        if percent > 0 && self.rng.borrow_mut().chance_percent(percent) {
            self.fired.set(self.fired.get() + 1);
            true
        } else {
            false
        }
    }

    fn reached(&self, site: Site) {
        self.record_visit(site);
        if self.armed.get() == Some(site) {
            // Pop before running so the action's own site visits (which are
            // masked anyway) can never observe a half-borrowed queue.
            let action = {
                let mut window = self.window.borrow_mut();
                if window.is_empty() {
                    None
                } else {
                    Some(window.remove(0))
                }
            };
            if let Some(action) = action {
                action();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_seeded_and_deterministic() {
        let run = |seed: u64| {
            let hook = Rc::new(SimHook::new(SimRng::new(seed)));
            let _guard = hook.install();
            hook.set_probability("t::x", 50);
            (0..64).map(|_| fault::buggify("t::x")).collect::<Vec<bool>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
        let fired = run(11).iter().filter(|&&b| b).count();
        assert!(fired > 0 && fired < 64, "50% should fire sometimes, not always");
    }

    #[test]
    fn visits_are_traced_for_buggify_and_reached() {
        let hook = Rc::new(SimHook::new(SimRng::new(0)));
        let _guard = hook.install();
        fault::reached("t::a");
        fault::reached("t::a");
        let _ = fault::buggify("t::b");
        assert_eq!(hook.visits("t::a"), 2);
        assert_eq!(hook.visits("t::b"), 1);
        assert_eq!(hook.visits("t::never"), 0);
    }

    #[test]
    fn armed_window_runs_one_action_per_visit() {
        let hook = Rc::new(SimHook::new(SimRng::new(0)));
        let _guard = hook.install();
        let ran: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let ran = ran.clone();
            hook.queue_window_action(move || ran.borrow_mut().push(i));
        }
        hook.arm_window("t::win");
        fault::reached("t::other"); // not armed: runs nothing
        assert!(ran.borrow().is_empty());
        fault::reached("t::win");
        fault::reached("t::win");
        assert_eq!(*ran.borrow(), vec![0, 1]);
        let leftovers = hook.disarm_window();
        assert_eq!(leftovers.len(), 1);
        fault::reached("t::win"); // disarmed: runs nothing
        assert_eq!(*ran.borrow(), vec![0, 1]);
    }

    #[test]
    fn window_actions_cannot_reenter_the_hook() {
        let hook = Rc::new(SimHook::new(SimRng::new(0)));
        let _guard = hook.install();
        hook.set_probability("t::nested", 100);
        let nested_fired = Rc::new(Cell::new(false));
        {
            let nested_fired = nested_fired.clone();
            hook.queue_window_action(move || {
                // Masked during hook callbacks: must not fire or recurse.
                nested_fired.set(fault::buggify("t::nested"));
                fault::reached("t::win");
            });
        }
        hook.arm_window("t::win");
        fault::reached("t::win");
        assert!(!nested_fired.get());
        assert_eq!(hook.visits("t::nested"), 0);
    }
}
