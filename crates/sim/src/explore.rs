//! Schedule exploration: seeded random walks and exhaustive interleavings.
//!
//! Two complementary modes, per ADR-001-style simulation-first testing:
//!
//! * [`random_walk`] — run a property under many derived seeds; any panic
//!   is caught, the failing seed printed, and the panic re-raised, so every
//!   failure is replayable via `SEC_SIM_SEED`.
//! * [`interleavings`] — enumerate *every* order-preserving merge of a few
//!   short operation tracks (the "≤6-step window" mode): when the window is
//!   small enough to exhaust, exhaust it instead of sampling.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::SimRng;
use crate::seed;

/// Runs `property` under `runs` seeds derived from a fresh entropy root —
/// unless [`seed::SEED_ENV`] is set, in which case the pinned seed is run
/// exactly once (replay mode).
///
/// On a panic the failing seed is printed as an `SEC_SIM_SEED=0x…` line and
/// the panic resumes, so the test fails with both the original assertion
/// and its replay recipe.
pub fn random_walk(label: &str, runs: usize, property: impl Fn(u64)) {
    if let Some(pinned) = seed::from_env() {
        eprintln!(
            "sec-sim[{label}]: replaying pinned {}={pinned:#018x}",
            seed::SEED_ENV
        );
        property(pinned);
        return;
    }
    let root = seed::entropy();
    eprintln!("sec-sim[{label}]: walking {runs} seeds from entropy root {root:#018x}");
    let mut rng = SimRng::new(root);
    for run in 0..runs {
        let seed = rng.next_u64();
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(seed))) {
            eprintln!(
                "sec-sim[{label}]: run {run}/{runs} FAILED — replay with {}={seed:#018x}",
                seed::SEED_ENV
            );
            resume_unwind(panic);
        }
    }
}

/// All order-preserving merges of `tracks`: every schedule that runs each
/// track's steps in order while interleaving the tracks freely. The number
/// of merges is the multinomial coefficient of the track lengths — e.g. two
/// tracks of 3 steps yield C(6,3) = 20 schedules.
///
/// Intended for exhaustive exploration of short windows: the total step
/// count across tracks must be at most [`MAX_EXHAUSTIVE_STEPS`] (panics
/// otherwise — widening the window is a test-authoring error, not a runtime
/// condition).
pub fn interleavings<T: Clone>(tracks: &[Vec<T>]) -> Vec<Vec<T>> {
    let total: usize = tracks.iter().map(Vec::len).sum();
    assert!(
        total <= MAX_EXHAUSTIVE_STEPS,
        "exhaustive interleaving of {total} steps would explode; keep windows ≤ {MAX_EXHAUSTIVE_STEPS} steps"
    );
    let mut cursors = vec![0usize; tracks.len()];
    let mut current = Vec::with_capacity(total);
    let mut out = Vec::new();
    merge(tracks, &mut cursors, &mut current, &mut out);
    out
}

/// Cap on the total step count [`interleavings`] will exhaust. 8 steps cap
/// the schedule count at C(8,4) = 70 two-track merges (worst case 8! = 40320
/// single-step tracks), both trivially cheap; the issue's target windows are
/// ≤ 6 steps.
pub const MAX_EXHAUSTIVE_STEPS: usize = 8;

fn merge<T: Clone>(
    tracks: &[Vec<T>],
    cursors: &mut [usize],
    current: &mut Vec<T>,
    out: &mut Vec<Vec<T>>,
) {
    let mut extended = false;
    for (track_idx, track) in tracks.iter().enumerate() {
        let at = cursors[track_idx];
        if let Some(step) = track.get(at) {
            extended = true;
            cursors[track_idx] = at + 1;
            current.push(step.clone());
            merge(tracks, cursors, current, out);
            current.pop();
            cursors[track_idx] = at;
        }
    }
    if !extended {
        out.push(current.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tracks_of_three_give_twenty_merges() {
        let tracks = vec![vec!["a1", "a2", "a3"], vec!["b1", "b2", "b3"]];
        let all = interleavings(&tracks);
        assert_eq!(all.len(), 20); // C(6,3)
        for schedule in &all {
            assert_eq!(schedule.len(), 6);
            // Track order is preserved within each merge.
            let a: Vec<_> = schedule.iter().filter(|s| s.starts_with('a')).collect();
            let b: Vec<_> = schedule.iter().filter(|s| s.starts_with('b')).collect();
            assert_eq!(a, vec![&"a1", &"a2", &"a3"]);
            assert_eq!(b, vec![&"b1", &"b2", &"b3"]);
        }
        // All schedules are distinct.
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn single_track_is_identity() {
        let all = interleavings(&[vec![1, 2, 3]]);
        assert_eq!(all, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_tracks_yield_the_empty_schedule() {
        let all = interleavings::<u8>(&[vec![], vec![]]);
        assert_eq!(all, vec![Vec::<u8>::new()]);
    }

    #[test]
    #[should_panic(expected = "exhaustive interleaving")]
    fn oversized_windows_are_rejected() {
        let _ = interleavings(&[vec![0; 5], vec![0; 5]]);
    }

    #[test]
    fn random_walk_is_quiet_on_success_and_replays_pinned_seeds() {
        // No env manipulation here (tests run in parallel); just check the
        // walk drives the property with distinct seeds.
        let seen = std::cell::RefCell::new(Vec::new());
        random_walk("explore-test", 5, |seed| seen.borrow_mut().push(seed));
        let seen = seen.into_inner();
        if seed::from_env().is_none() {
            assert_eq!(seen.len(), 5);
            let mut dedup = seen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 5, "derived seeds must be distinct");
        } else {
            assert_eq!(seen.len(), 1);
        }
    }
}
