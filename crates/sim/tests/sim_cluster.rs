//! Deterministic re-expression of `crates/engine/tests/cluster_chaos.rs`,
//! plus the pinned-seed regression for the `SecCluster::repair_node`
//! window race this change fixes.

use sec_sim::harness::{ClusterOp, ClusterSim, ClusterSimOptions, ClusterWindowOp};
use sec_sim::{random_walk, SimRng};

const N: usize = 5;
const K: usize = 3;
const SHARDS: usize = 2;
const OBJECTS: usize = 4;
const OBJECT_LEN: usize = 48;

fn options() -> ClusterSimOptions {
    ClusterSimOptions::strict(N, K, SHARDS, OBJECTS, OBJECT_LEN)
}

/// Seeded exploration over the full cluster alphabet: appends and reads on
/// several objects across shards, node failures, revivals and repairs with
/// interleaving windows — every read checked against the per-object model
/// and the store oracle.
#[test]
fn seeded_cluster_schedules_match_their_models() {
    random_walk("cluster-walk", 25, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = ClusterSim::new(options(), rng.fork());
        for _ in 0..70 {
            let op = sim.random_op(&mut rng);
            sim.step(&op);
        }
        sim.step(&ClusterOp::CheckMetrics);
    });
}

/// `readers_on_quiet_shards_stay_exact_while_other_shards_burn`,
/// deterministic: one object's shard stays untouched while every node of
/// the *other* shard is churned through fail/revive/repair; reads of the
/// quiet object must stay bit-exact throughout (the harness asserts so on
/// every `Get`).
#[test]
fn quiet_shards_stay_exact_while_other_shards_burn() {
    random_walk("cluster-quiet-shard", 15, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = ClusterSim::new(options(), rng.fork());
        // Give every object a version so each shard holds data, then find
        // two objects on different shards.
        for object in 0..OBJECTS {
            sim.step(&ClusterOp::Append {
                object,
                edits: vec![(rng.gen_range(OBJECT_LEN), 0x17)],
            });
        }
        let quiet = 0;
        let quiet_shard = sim.object_shard(quiet);
        let burn_shard = (quiet_shard + 1) % SHARDS;
        for round in 0..12 {
            let node = rng.gen_range(N);
            match round % 3 {
                0 => sim.step(&ClusterOp::Fail {
                    shard: burn_shard,
                    node,
                }),
                1 => sim.step(&ClusterOp::Revive {
                    shard: burn_shard,
                    node,
                }),
                _ => sim.step(&ClusterOp::Repair {
                    shard: burn_shard,
                    node,
                    window: Vec::new(),
                }),
            }
            let upto = sim.object_versions(quiet);
            sim.step(&ClusterOp::Get {
                object: quiet,
                version: 1 + rng.gen_range(upto),
            });
        }
        sim.step(&ClusterOp::CheckMetrics);
    });
}

/// `concurrent_appenders_on_distinct_objects_do_not_interleave_sequences`,
/// deterministic: interleaved appends to distinct objects never cross
/// version chains — each object's reads must return *its* bytes.
#[test]
fn interleaved_appends_keep_object_sequences_isolated() {
    random_walk("cluster-isolated-appends", 15, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = ClusterSim::new(options(), rng.fork());
        for _ in 0..24 {
            let object = rng.gen_range(OBJECTS);
            sim.step(&ClusterOp::Append {
                object,
                edits: vec![(rng.gen_range(OBJECT_LEN), (object as u8 + 1) << 3)],
            });
        }
        for object in 0..OBJECTS {
            for version in 1..=sim.object_versions(object) {
                sim.step(&ClusterOp::Get { object, version });
            }
        }
        sim.step(&ClusterOp::CheckMetrics);
    });
}

/// The cluster walk with per-engine delta caches and anchor checkpoints on
/// (including the walk's `ResetCache` steps): byte equality against each
/// object's model and oracle throughout.
#[test]
fn cached_checkpointed_cluster_walks_match_their_models() {
    random_walk("cluster-cache-checkpoints", 15, |seed| {
        let mut rng = SimRng::new(seed);
        let mut options = options();
        options.cache_capacity = 3;
        options.checkpoint_spacing = 2;
        let mut sim = ClusterSim::new(options, rng.fork());
        for _ in 0..70 {
            let op = sim.random_op(&mut rng);
            sim.step(&op);
        }
        sim.step(&ClusterOp::CheckMetrics);
    });
}

/// Pinned cluster mirror of the engine's cache lifecycle test: with more
/// than `n − k` nodes of an object's shard down, the append-warmed cache
/// keeps serving; `ResetCache` forces the next read back to the nodes,
/// where it fails exactly as the oracle predicts until the nodes revive.
#[test]
fn cluster_cached_reads_survive_dead_nodes_until_reset() {
    let mut opts = options();
    opts.cache_capacity = 2;
    let mut rng = SimRng::new(0x5EC0_0000_0000_0009);
    let mut sim = ClusterSim::new(opts, rng.fork());
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: Vec::new(),
    });
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: vec![(3, 0x21)],
    });
    let shard = sim.object_shard(0);
    for node in 0..=2 {
        sim.step(&ClusterOp::Fail { shard, node });
    }
    sim.step(&ClusterOp::Get {
        object: 0,
        version: 2,
    });
    sim.step(&ClusterOp::ResetCache { object: 0 });
    sim.step(&ClusterOp::Get {
        object: 0,
        version: 2,
    });
    for node in 0..=2 {
        sim.step(&ClusterOp::Revive { shard, node });
    }
    sim.step(&ClusterOp::Get {
        object: 0,
        version: 2,
    });
    sim.step(&ClusterOp::CheckMetrics);
}

/// Pinned-seed regression for the `SecCluster::repair_node` window bug
/// fixed in this change: the repair rebuilt every engine, then revived the
/// node *unconditionally* — a failure landing between the last rebuild and
/// the revive was silently erased, leaving the node marked live with
/// post-failure writes never rebuilt. The fixed repair snapshots the
/// node's failure epoch and only commits the revive if no new failure
/// intervened, returning `RepairRaced` otherwise (the harness turns a
/// lost failure into a LOST FAILURE panic).
#[test]
fn cluster_repair_window_failure_is_never_lost() {
    // Pinned schedule — this is the regression, not an exploration.
    let mut rng = SimRng::new(0x5EC0_0000_0000_0006);
    let mut sim = ClusterSim::new(options(), rng.fork());
    // Two objects with data (whichever shards they land on) so the repair
    // has engines to rebuild and its window actually opens.
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: Vec::new(),
    });
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: vec![(3, 0x42)],
    });
    sim.step(&ClusterOp::Append {
        object: 1,
        edits: Vec::new(),
    });
    let shard = sim.object_shard(0);
    sim.step(&ClusterOp::Fail { shard, node: 2 });
    // Re-fail the node inside the repair window (between two per-object
    // rebuilds). The harness asserts the repair reports `RepairRaced`.
    sim.step(&ClusterOp::Repair {
        shard,
        node: 2,
        window: vec![ClusterWindowOp::Fail(shard, 2)],
    });
    assert!(!sim.model_alive(shard, 2), "the mid-repair failure must stick");
    sim.step(&ClusterOp::CheckMetrics);
    // Recovery: re-run the repair; it commits and reads come back exact.
    sim.step(&ClusterOp::Repair {
        shard,
        node: 2,
        window: Vec::new(),
    });
    assert!(sim.model_alive(shard, 2));
    for object in 0..OBJECTS {
        for version in 1..=sim.object_versions(object) {
            sim.step(&ClusterOp::Get { object, version });
        }
    }
    sim.step(&ClusterOp::CheckMetrics);
}

/// Objects admitted *during* a repair window (first append racing the
/// repair) are safe: the first append writes complete blocks, so the new
/// object needs nothing from the rebuild. The repair still commits (no
/// failure intervened) and every read stays exact.
#[test]
fn objects_admitted_mid_repair_are_complete() {
    let mut rng = SimRng::new(0x5EC0_0000_0000_0008);
    let mut sim = ClusterSim::new(options(), rng.fork());
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: Vec::new(),
    });
    sim.step(&ClusterOp::Append {
        object: 0,
        edits: vec![(1, 9)],
    });
    let shard = sim.object_shard(0);
    sim.step(&ClusterOp::Fail { shard, node: 1 });
    // Window: the *first* append of object 2 lands between per-object
    // rebuilds, admitting a brand-new object the repair's engine snapshot
    // has never seen. Its first-append blocks are complete, so it needs
    // nothing from the rebuild.
    assert_eq!(sim.object_versions(2), 0);
    sim.step(&ClusterOp::Repair {
        shard,
        node: 1,
        window: vec![ClusterWindowOp::Append(2, vec![(2, 0x77)])],
    });
    assert!(
        sim.model_alive(shard, 1),
        "no failure intervened: the repair must commit"
    );
    assert_eq!(sim.object_versions(2), 1, "the window append must have run");
    for object in [0, 2] {
        for version in 1..=sim.object_versions(object) {
            sim.step(&ClusterOp::Get { object, version });
        }
    }
    sim.step(&ClusterOp::CheckMetrics);
}
