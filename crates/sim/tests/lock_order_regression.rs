//! Pinned-seed regression for the metrics/append lock-order inversion.
//!
//! An earlier metrics path acquired the slab directory (rank 2) before the
//! archive (rank 0) while `append_version` held them in hierarchy order —
//! a real deadlock under thread racing, and invisible until the OS
//! scheduler happened to interleave the two paths. This test reproduces
//! the *shape* of that bug deterministically: the pre-fix acquisition
//! order is modelled with the engine's own rank-checked [`OrderedRwLock`],
//! which turns the would-be deadlock into an immediate "lock-order
//! violation" panic on a pinned seed's schedule; the same schedule against
//! the fixed engine's real `metrics_snapshot` passes and demonstrably
//! exercises the same ranks (checked through the fault-hook lock trace).

use std::panic::{catch_unwind, AssertUnwindSafe};

use sec_engine::ordered::{LockRank, OrderedRwLock};
use sec_sim::harness::{EngineSim, Op, SimOptions};
use sec_sim::SimRng;

/// The schedule is pinned: this regression replays one known-bad
/// interleaving, it does not explore.
const PINNED_SEED: u64 = 0x5E_C006_D00D_BEEF;

/// Steps in the pinned schedule: `true` = metrics snapshot, `false` =
/// append. Derived from the seed so the schedule is a pure function of it.
fn pinned_schedule() -> Vec<bool> {
    let mut rng = SimRng::new(PINNED_SEED);
    // At least one append before the first metrics step, then a seed-drawn
    // mix — the inversion needs both paths present, not a specific mix.
    let mut steps = vec![false];
    for _ in 0..10 {
        steps.push(rng.chance_percent(50));
    }
    steps
}

/// The pre-fix code shape: appends take archive → directory (hierarchy
/// order); the metrics view took directory → archive. Modelled with the
/// engine's own rank-checked locks, the first metrics step of the pinned
/// schedule panics at the acquisition site in debug builds — the
/// deterministic, attributable form of the deadlock the thread-raced
/// chaos suite could only hit by luck.
#[cfg(debug_assertions)]
#[test]
fn pre_fix_metrics_shape_violates_the_hierarchy_on_the_pinned_schedule() {
    let archive = OrderedRwLock::new(LockRank::Archive, 0u64);
    let directory = OrderedRwLock::new(LockRank::Directory, Vec::<u64>::new());
    let result = catch_unwind(AssertUnwindSafe(|| {
        for metrics_step in pinned_schedule() {
            if metrics_step {
                // Pre-fix metrics order: directory first, then archive.
                let slabs = directory.read();
                let versions = archive.read();
                let _ = (slabs.len(), *versions);
            } else {
                // Append order (correct): archive first, then directory.
                let mut versions = archive.write();
                *versions += 1;
                directory.write().push(*versions);
            }
        }
    }));
    let panic = result.expect_err("the pre-fix acquisition order must trip the rank check");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains("lock-order violation"),
        "expected the rank check to name the violation, got: {message}"
    );
}

/// The fixed engine runs the *same* pinned schedule — real appends
/// interleaved with real `metrics_snapshot` calls — without tripping the
/// rank check, and the lock trace proves the schedule exercised the same
/// archive and directory ranks the pre-fix shape inverted.
#[test]
fn fixed_engine_survives_the_same_schedule() {
    let mut sim = EngineSim::new(SimOptions::strict(5, 3, 64), SimRng::new(PINNED_SEED));
    for metrics_step in pinned_schedule() {
        if metrics_step {
            sim.step(&Op::CheckMetrics);
        } else {
            sim.step(&Op::Append {
                edits: vec![(11, 0x2A)],
            });
        }
    }
    sim.step(&Op::CheckMetrics);
    let archive_acquisitions = sim.hook().visits("engine::lock::archive");
    let directory_acquisitions = sim.hook().visits("engine::lock::directory");
    assert!(
        archive_acquisitions > 0 && directory_acquisitions > 0,
        "the schedule must exercise both ranks the inversion involved \
         (archive: {archive_acquisitions}, directory: {directory_acquisitions})"
    );
}
