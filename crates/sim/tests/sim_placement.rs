//! Deterministic re-expression of `crates/engine/tests/placement_chaos.rs`:
//! dispersed placement, where every archive entry owns a private group of
//! `n` nodes and failures are scoped to single entries.

use sec_engine::PlacementStrategy;
use sec_sim::harness::{EngineSim, Op, SimOptions};
use sec_sim::{interleavings, random_walk, SimRng};

const N: usize = 5;
const K: usize = 3;
const OBJECT_LEN: usize = 48;

fn dispersed_options() -> SimOptions {
    let mut options = SimOptions::strict(N, K, OBJECT_LEN);
    options.placement = PlacementStrategy::Dispersed;
    options
}

/// `failing_one_entry_degrades_only_the_versions_that_need_it`,
/// deterministic: killing the *last* delta entry's node group makes only
/// the last version unrecoverable — every earlier version is decoded from
/// entries whose groups are intact. The harness checks both directions
/// (engine errors the oracle does not share are divergence, and vice
/// versa).
#[test]
fn failing_one_entry_degrades_only_the_versions_that_need_it() {
    random_walk("placement-entry-scoped", 10, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = EngineSim::new(dispersed_options(), rng.fork());
        let versions = 4;
        for _ in 0..versions {
            sim.step(&Op::Append {
                edits: vec![(rng.gen_range(OBJECT_LEN), 0x2B)],
            });
        }
        // Entry indices equal version indices under BasicSec (x1, then a
        // delta per version); kill the last entry's group beyond repair.
        let last_entry = versions - 1;
        for position in 0..=(N - K) {
            sim.step(&Op::Fail {
                node: last_entry * N + position,
            });
        }
        // Earlier versions read clean; the last is unrecoverable on both
        // the engine and the oracle (the harness asserts the errors match).
        for version in 1..=versions {
            sim.step(&Op::Get { version });
        }
        sim.step(&Op::GetPrefix { upto: versions - 1 });
        sim.step(&Op::CheckMetrics);
    });
}

/// `concurrent_readers_are_isolated_from_entry_churn_and_growth`,
/// deterministic: reads of settled versions interleave with appends (which
/// grow the node space) and with failure churn on *other* entries' groups;
/// every read must stay bit-exact.
#[test]
fn readers_are_isolated_from_entry_churn_and_growth() {
    random_walk("placement-churn", 15, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = EngineSim::new(dispersed_options(), rng.fork());
        sim.step(&Op::Append { edits: Vec::new() });
        for _ in 0..30 {
            match rng.gen_range(4) {
                0 if sim.version_count() < 10 => sim.step(&Op::Append {
                    edits: vec![(rng.gen_range(OBJECT_LEN), 0x5D)],
                }),
                1 => {
                    // Churn the newest entry's group; version 1 only needs
                    // entry 0.
                    let entry = sim.version_count() - 1;
                    if entry > 0 {
                        let node = entry * N + rng.gen_range(N);
                        sim.step(&Op::Fail { node });
                        sim.step(&Op::Revive { node });
                    }
                }
                2 => {
                    let node = rng.gen_range(sim.node_count());
                    sim.step(&Op::Repair {
                        node,
                        window: Vec::new(),
                    });
                }
                _ => sim.step(&Op::Get {
                    version: 1 + rng.gen_range(sim.version_count()),
                }),
            }
        }
        sim.step(&Op::CheckMetrics);
    });
}

/// Full-alphabet walk under dispersed placement (repairs with windows,
/// timed failures, cache resets — everything `random_op` draws).
#[test]
fn dispersed_random_walks_match_the_oracle() {
    random_walk("placement-walk", 20, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = EngineSim::new(dispersed_options(), rng.fork());
        for _ in 0..60 {
            let op = sim.random_op(&mut rng);
            sim.step(&op);
        }
        sim.step(&Op::CheckMetrics);
    });
}

/// Exhaustive mode: every interleaving of entry-scoped failure churn with
/// appends that grow the placement (C(6,3) = 20 schedules, each checked
/// end to end).
#[test]
fn exhaustive_interleavings_of_growth_and_entry_failures() {
    let churn_track = vec![
        Op::Fail { node: 1 },
        Op::Get { version: 1 },
        Op::Revive { node: 1 },
    ];
    let growth_track = vec![
        Op::Append {
            edits: vec![(3, 0x61)],
        },
        Op::Append {
            edits: vec![(9, 0x62)],
        },
        Op::Get { version: 1 },
    ];
    let schedules = interleavings(&[churn_track, growth_track]);
    assert_eq!(schedules.len(), 20);
    for schedule in &schedules {
        let mut sim = EngineSim::new(dispersed_options(), SimRng::new(1));
        sim.step(&Op::Append { edits: Vec::new() });
        sim.run(schedule);
    }
}
