//! Torn repairs never destroy recoverable data.
//!
//! A repair that dies between staging and commit (`engine::rebuild::abort`)
//! or mid-rebuild (`store::repair::abort`) must leave every version that
//! was recoverable before the repair still recoverable after it — and a
//! retry must finish the job. The abort points are the crate's buggify
//! sites, fired deterministically through the installed [`SimHook`].

use std::rc::Rc;

use sec_engine::{PlacementStrategy, SecEngine};
use sec_erasure::GeneratorForm;
use sec_sim::harness::{next_version, EngineSim, Op, SimOptions};
use sec_sim::{random_walk, SimHook, SimRng};
use sec_store::{ByteDistributedStore, StoreError};
use sec_versioning::{ArchiveConfig, ByteVersionedArchive, EncodingStrategy};

const N: usize = 5;
const K: usize = 3;
const OBJECT_LEN: usize = 64;

fn config() -> ArchiveConfig {
    ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid config")
}

fn version_chain(count: usize) -> Vec<Vec<u8>> {
    let mut versions = Vec::new();
    for i in 0..count {
        let parent = versions.last().map(Vec::as_slice);
        versions.push(next_version(parent, OBJECT_LEN, &[(i * 7 + 1, 0x3C + i as u8)]));
    }
    versions
}

/// Engine-level torn repair: the abort fires between the rebuild's staging
/// and its commit, the repair errors, the node stays failed — and every
/// version readable before is readable after, byte-identical. The retry
/// completes, and the rebuilt blocks are *proven* good by failing enough
/// other nodes that decoding must use them.
#[test]
fn aborted_engine_rebuild_destroys_nothing_and_retry_completes() {
    let engine = SecEngine::with_placement(config(), PlacementStrategy::Colocated, 0)
        .expect("engine construction");
    let versions = version_chain(4);
    for bytes in &versions {
        engine.append_version(bytes).expect("append");
    }
    engine.fail_node(0).expect("fail");

    let hook = Rc::new(SimHook::new(SimRng::new(0x70A2)));
    let _guard = hook.install();
    hook.set_probability("engine::rebuild::abort", 100);
    let err = engine
        .repair_node(0)
        .expect_err("the armed abort must tear the repair");
    assert!(
        matches!(err, StoreError::Unrecoverable { .. }),
        "a torn rebuild surfaces as Unrecoverable, got {err}"
    );
    assert!(hook.faults_fired() > 0, "the abort site must actually have fired");
    assert_eq!(
        engine.is_node_alive(0),
        Ok(false),
        "a torn repair must not revive the node"
    );
    // Nothing was destroyed: every version still reads exactly.
    for (idx, bytes) in versions.iter().enumerate() {
        let got = engine
            .get_version(idx + 1)
            .expect("recoverable with one node down");
        assert_eq!(
            *got.data,
            *bytes,
            "version {} diverged after the torn repair",
            idx + 1
        );
    }

    // Retry with the fault disarmed: the repair completes.
    hook.set_probability("engine::rebuild::abort", 0);
    engine.repair_node(0).expect("retry must complete");
    assert_eq!(engine.is_node_alive(0), Ok(true));
    // Force decoding to depend on node 0's rebuilt blocks: with n−k other
    // nodes down, every read needs node 0.
    for node in K..N {
        engine.fail_node(node).expect("fail");
    }
    for (idx, bytes) in versions.iter().enumerate() {
        let got = engine
            .get_version(idx + 1)
            .expect("k live nodes incl. the repaired one");
        assert_eq!(
            *got.data,
            *bytes,
            "rebuilt blocks of version {} are wrong",
            idx + 1
        );
    }
}

/// Store-level torn repair: `store::repair::abort` kills the rebuild loop
/// after the node was revived and wiped — the worst moment, since the node
/// is live but missing blocks. The retry rebuilds everything, proven by
/// reading with the repaired node load-bearing.
#[test]
fn aborted_store_repair_is_completed_by_retry() {
    let mut archive = ByteVersionedArchive::new(config()).expect("archive");
    let versions = version_chain(4);
    for bytes in &versions {
        archive.append_version(bytes).expect("append");
    }
    let mut store = ByteDistributedStore::colocated(&archive);
    store.fail_node(0).expect("fail");

    let hook = Rc::new(SimHook::new(SimRng::new(0x70A3)));
    let _guard = hook.install();
    hook.set_probability("store::repair::abort", 100);
    let err = store
        .repair_node(&archive, 0)
        .expect_err("the armed abort must tear the repair");
    assert!(matches!(err, StoreError::Unrecoverable { .. }));
    assert!(hook.faults_fired() > 0);

    hook.set_probability("store::repair::abort", 0);
    store.repair_node(&archive, 0).expect("retry must complete");
    for position in K..N {
        store.fail_node(position).expect("fail");
    }
    for (idx, bytes) in versions.iter().enumerate() {
        let got = store
            .retrieve_version(&archive, idx + 1)
            .expect("k live nodes incl. the repaired one");
        assert_eq!(
            got.data,
            *bytes,
            "rebuilt blocks of version {} are wrong",
            idx + 1
        );
    }
}

/// The same property explored: walks whose repairs abort with 30%
/// probability must never diverge from the model — reads after any number
/// of torn repairs stay byte-exact (the harness checks every `Get`).
#[test]
fn walks_with_flaky_repairs_never_lose_data() {
    random_walk("torn-repair-walk", 20, |seed| {
        let mut rng = SimRng::new(seed);
        let mut options = SimOptions::strict(N, K, OBJECT_LEN);
        options.rebuild_abort_percent = 30;
        let mut sim = EngineSim::new(options, rng.fork());
        for _ in 0..60 {
            let op = sim.random_op(&mut rng);
            sim.step(&op);
        }
        sim.step(&Op::CheckMetrics);
    });
}

/// Spurious read faults (`store::node::read`) compose with torn repairs:
/// the engine may fail reads the fault-free oracle serves, but whenever it
/// *does* serve bytes they are the model's bytes.
#[test]
fn walks_with_read_faults_serve_only_correct_bytes() {
    random_walk("read-fault-walk", 20, |seed| {
        let mut rng = SimRng::new(seed);
        let mut options = SimOptions::strict(N, K, OBJECT_LEN);
        options.read_fault_percent = 15;
        options.rebuild_abort_percent = 15;
        let mut sim = EngineSim::new(options, rng.fork());
        for _ in 0..60 {
            let op = sim.random_op(&mut rng);
            sim.step(&op);
        }
        sim.step(&Op::CheckMetrics);
    });
}
