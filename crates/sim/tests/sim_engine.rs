//! Deterministic re-expression of `crates/engine/tests/concurrency.rs`.
//!
//! The thread-raced suite hammers one engine from eight OS threads and
//! hopes the scheduler produces interesting interleavings; these tests
//! produce the interleavings *on purpose*, from a seed, and check every
//! step against the model and the store oracle. Any failure prints a
//! `SEC_SIM_SEED=0x…` line; export it to replay the schedule exactly.

use sec_engine::PlacementStrategy;
use sec_sim::harness::{next_version, EngineSim, Op, SimOptions, WindowOp};
use sec_sim::{interleavings, random_walk, SimRng};
use sec_versioning::EncodingStrategy;

const N: usize = 5;
const K: usize = 3;
const OBJECT_LEN: usize = 64;

fn walk(seed: u64, options: SimOptions, steps: usize) {
    let mut rng = SimRng::new(seed);
    let mut sim = EngineSim::new(options, rng.fork());
    for _ in 0..steps {
        let op = sim.random_op(&mut rng);
        sim.step(&op);
    }
    sim.step(&Op::CheckMetrics);
}

/// `eight_readers_match_the_archive_reference_bit_for_bit`, deterministic:
/// every `Get` in every schedule is checked against the reference archive's
/// bytes and the store oracle's I/O count.
#[test]
fn seeded_schedules_match_the_reference_bit_for_bit() {
    random_walk("engine-colocated-strict", 30, |seed| {
        walk(seed, SimOptions::strict(N, K, OBJECT_LEN), 60);
    });
}

/// The same exploration under each non-trivial encoding strategy.
#[test]
fn seeded_schedules_hold_under_every_encoding() {
    for encoding in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        random_walk("engine-encodings", 8, |seed| {
            let mut options = SimOptions::strict(N, K, OBJECT_LEN);
            options.encoding = encoding;
            walk(seed, options, 40);
        });
    }
}

/// `eight_readers_under_every_survivable_failure_pattern`, deterministic:
/// for every failure pattern with at most `n − k` dead nodes, reads of
/// every version must keep matching the reference (the harness panics on
/// the first divergence, and on any engine error the fault-free oracle
/// does not share).
#[test]
fn every_survivable_failure_pattern_serves_every_version() {
    random_walk("engine-survivable-patterns", 6, |seed| {
        let mut rng = SimRng::new(seed);
        for pattern in 0u32..1 << N {
            if pattern.count_ones() as usize > N - K {
                continue;
            }
            let mut sim = EngineSim::new(SimOptions::strict(N, K, OBJECT_LEN), rng.fork());
            for _ in 0..4 {
                sim.step(&Op::Append {
                    edits: vec![(rng.gen_range(OBJECT_LEN), 0x11)],
                });
            }
            for node in 0..N {
                if pattern & (1 << node) != 0 {
                    sim.step(&Op::Fail { node });
                }
            }
            for version in 1..=sim.version_count() {
                sim.step(&Op::Get { version });
            }
            sim.step(&Op::GetPrefix {
                upto: sim.version_count(),
            });
            sim.step(&Op::CheckMetrics);
        }
    });
}

/// `readers_race_failures_appends_and_repairs_without_corruption`,
/// deterministic: the random walk draws from the full operation alphabet
/// (appends, reads, failures, revivals, repairs with interleaving windows,
/// timed failures) and the cache is exercised too.
#[test]
fn reads_survive_failures_appends_and_repairs_without_corruption() {
    random_walk("engine-churn", 20, |seed| {
        let mut options = SimOptions::strict(N, K, OBJECT_LEN);
        options.cache_capacity = 3;
        walk(seed, options, 80);
    });
}

/// Checkpointed layouts stay *strict*: the reference archive shares the
/// engine's `CheckpointPolicy`, so the layouts (and therefore the I/O
/// accounting) stay bit-identical with caching disabled.
#[test]
fn checkpointed_schedules_keep_strict_io_accounting() {
    random_walk("engine-checkpointed-strict", 15, |seed| {
        let mut options = SimOptions::strict(N, K, OBJECT_LEN);
        options.checkpoint_spacing = 2;
        walk(seed, options, 60);
    });
}

/// Cache, checkpoints and the full churn alphabet together (including the
/// walk's `ResetCache` steps): byte equality against model and oracle
/// under each delta-bearing encoding.
#[test]
fn cached_checkpointed_walks_survive_churn() {
    for encoding in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
    ] {
        random_walk("engine-cache-checkpoints", 8, |seed| {
            let mut options = SimOptions::strict(N, K, OBJECT_LEN);
            options.encoding = encoding;
            options.cache_capacity = 3;
            options.checkpoint_spacing = 2;
            walk(seed, options, 60);
        });
    }
}

/// Pinned cache lifecycle: with more than `n − k` nodes down, an uncached
/// read is unrecoverable, but the append-warmed cache keeps serving the
/// latest version; `ResetCache` drops it and the very same read then fails
/// exactly as the oracle predicts, until a revival restores service.
#[test]
fn cached_reads_survive_dead_nodes_until_reset() {
    let mut options = SimOptions::strict(N, K, OBJECT_LEN);
    options.cache_capacity = 2;
    let mut sim = EngineSim::new(options, SimRng::new(11));
    sim.step(&Op::Append { edits: Vec::new() });
    sim.step(&Op::Append {
        edits: vec![(3, 0x21)],
    });
    sim.step(&Op::Append {
        edits: vec![(9, 0x42)],
    });
    // k = 3 live nodes are required; leave only 2 so node reads die.
    sim.step(&Op::Fail { node: 0 });
    sim.step(&Op::Fail { node: 1 });
    sim.step(&Op::Fail { node: 2 });
    // Appends pre-warmed the cache: version 3 is served from it (the
    // harness's Ok-vs-oracle-Err arm asserts the hit is cached).
    sim.step(&Op::Get { version: 3 });
    // Dropping the cache forces node reads; the engine now fails with
    // exactly the oracle's error (the Err/Err arm asserts equality).
    sim.step(&Op::ResetCache);
    sim.step(&Op::Get { version: 3 });
    sim.step(&Op::Revive { node: 0 });
    sim.step(&Op::Get { version: 3 });
    sim.step(&Op::CheckMetrics);
}

/// Exhaustive mode: every order-preserving interleaving of a failure/repair
/// track with an append/read track — all C(4,2) = 6 schedules, not a
/// sample. The harness checks model and oracle agreement in each.
#[test]
fn exhaustive_interleavings_of_repair_and_append() {
    let repair_track = vec![
        Op::Fail { node: 1 },
        Op::Repair {
            node: 1,
            window: Vec::new(),
        },
    ];
    let append_track = vec![
        Op::Append {
            edits: vec![(5, 0x21)],
        },
        Op::Get { version: 1 },
    ];
    let schedules = interleavings(&[repair_track, append_track]);
    assert_eq!(schedules.len(), 6);
    for schedule in &schedules {
        let mut sim = EngineSim::new(SimOptions::strict(N, K, OBJECT_LEN), SimRng::new(0));
        sim.step(&Op::Append { edits: Vec::new() });
        // `Get { version: 1 }` needs version 1, appended above; the merged
        // tracks then exercise fail/repair against append/read in every
        // relative order.
        sim.run(schedule);
    }
}

/// Pinned-seed regression for the repair-window race (the `SecCluster::
/// repair_node` bug fixed in this change, which `SecEngine::repair_node`
/// shared): a node that fails *while its repair is rebuilding* must not be
/// revived by that repair's commit. Pre-fix, the unconditional revive
/// stomped the new failure and the harness's LOST FAILURE assertion fires;
/// fixed, the repair observes the epoch bump and returns `RepairRaced`.
#[test]
fn repair_window_failure_is_never_lost() {
    // Pinned: this exact schedule is the regression, not a random walk.
    let mut rng = SimRng::new(0x5EC0_0000_0000_0007);
    let mut sim = EngineSim::new(SimOptions::strict(N, K, OBJECT_LEN), rng.fork());
    sim.step(&Op::Append { edits: Vec::new() });
    sim.step(&Op::Append {
        edits: vec![(3, 0x42)],
    });
    sim.step(&Op::Fail { node: 2 });
    // The window re-fails node 2 between its rebuild and its commit. The
    // harness asserts the repair reports `RepairRaced` (an `Ok` here is the
    // lost failure).
    sim.step(&Op::Repair {
        node: 2,
        window: vec![WindowOp::Fail(2)],
    });
    assert!(!sim.model_alive(2), "the mid-repair failure must stick");
    sim.step(&Op::CheckMetrics);
    // The documented recovery: re-run the repair. No window this time, so
    // it commits and the node serves reads again.
    sim.step(&Op::Repair {
        node: 2,
        window: Vec::new(),
    });
    assert!(sim.model_alive(2));
    for version in 1..=sim.version_count() {
        sim.step(&Op::Get { version });
    }
    sim.step(&Op::CheckMetrics);
}

/// The repair window under heavier traffic: appends and reads landing in
/// the window are linearized before the repair's commit and must all be
/// visible afterwards.
#[test]
fn repair_windows_linearize_appends_and_reads() {
    random_walk("engine-repair-windows", 20, |seed| {
        let mut rng = SimRng::new(seed);
        let mut sim = EngineSim::new(SimOptions::strict(N, K, OBJECT_LEN), rng.fork());
        for _ in 0..3 {
            sim.step(&Op::Append {
                edits: vec![(rng.gen_range(OBJECT_LEN), 0x33)],
            });
        }
        let node = rng.gen_range(N);
        sim.step(&Op::Fail { node });
        sim.step(&Op::Repair {
            node,
            window: vec![
                WindowOp::Append(vec![(rng.gen_range(OBJECT_LEN), 0x44)]),
                WindowOp::Get(1),
                WindowOp::Append(vec![(rng.gen_range(OBJECT_LEN), 0x55)]),
            ],
        });
        for version in 1..=sim.version_count() {
            sim.step(&Op::Get { version });
        }
        sim.step(&Op::CheckMetrics);
    });
}

/// Timed failures: a node down for `t` virtual ticks comes back when the
/// clock reaches its revival, and reads in between degrade exactly as the
/// oracle predicts.
#[test]
fn virtual_clock_revivals_restore_service() {
    let mut sim = EngineSim::new(SimOptions::strict(N, K, OBJECT_LEN), SimRng::new(9));
    sim.step(&Op::Append { edits: Vec::new() });
    sim.step(&Op::FailFor { node: 0, ticks: 3 });
    sim.step(&Op::FailFor { node: 1, ticks: 5 });
    assert!(!sim.model_alive(0) && !sim.model_alive(1));
    sim.step(&Op::Get { version: 1 });
    sim.step(&Op::AdvanceClock { ticks: 3 });
    assert!(sim.model_alive(0), "node 0's revival was due at tick 3");
    assert!(!sim.model_alive(1), "node 1's revival is due at tick 5");
    sim.step(&Op::AdvanceClock { ticks: 2 });
    assert!(sim.model_alive(1));
    sim.step(&Op::Get { version: 1 });
    sim.step(&Op::CheckMetrics);
}

/// The base-object helper is deterministic: the same edits always produce
/// the same version chain (this is what makes window appends replayable).
#[test]
fn version_chains_are_pure_functions_of_their_edits() {
    let v1 = next_version(None, OBJECT_LEN, &[]);
    let v2 = next_version(Some(&v1), OBJECT_LEN, &[(7, 0x10)]);
    assert_eq!(next_version(None, OBJECT_LEN, &[]), v1);
    assert_eq!(next_version(Some(&v1), OBJECT_LEN, &[(7, 0x10)]), v2);
    assert_ne!(v1, v2);
}

/// Dispersed placement joins the same exploration (placement-specific
/// scenarios live in `sim_placement.rs`).
#[test]
fn dispersed_schedules_match_the_reference() {
    random_walk("engine-dispersed", 15, |seed| {
        let mut options = SimOptions::strict(N, K, 48);
        options.placement = PlacementStrategy::Dispersed;
        walk(seed, options, 50);
    });
}
