//! Property tests for the wire protocol: every command round-trips through
//! encoder → parser under adversarial framing — torn at every byte
//! boundary, concatenated into pipelines, or padded with trailing bytes —
//! and hostile headers (oversized, signed, overflowing lengths) are
//! rejected without panicking.

use proptest::prelude::*;

use sec_engine::ObjectId;
use sec_net::proto::{
    self, encode_command, parse_command, parse_reply, Command, Parsed, ParsedReply, Reply, MAX_PAYLOAD,
};

/// An owned stand-in for `Command<'a>` (the borrowed payload can't live in a
/// proptest strategy).
#[derive(Debug, Clone)]
enum OwnedCommand {
    Ping,
    Metrics,
    Get { object: u64, version: usize },
    Prefix { object: u64, version: usize },
    Append { object: u64, payload: Vec<u8> },
    Fail { shard: usize, node: usize },
    Revive { shard: usize, node: usize },
}

impl OwnedCommand {
    fn borrow(&self) -> Command<'_> {
        match self {
            OwnedCommand::Ping => Command::Ping,
            OwnedCommand::Metrics => Command::Metrics,
            OwnedCommand::Get { object, version } => Command::Get {
                object: ObjectId(*object),
                version: *version,
            },
            OwnedCommand::Prefix { object, version } => Command::Prefix {
                object: ObjectId(*object),
                version: *version,
            },
            OwnedCommand::Append { object, payload } => Command::Append {
                object: ObjectId(*object),
                payload,
            },
            OwnedCommand::Fail { shard, node } => Command::Fail {
                shard: *shard,
                node: *node,
            },
            OwnedCommand::Revive { shard, node } => Command::Revive {
                shard: *shard,
                node: *node,
            },
        }
    }
}

/// Object ids biased toward the extremes of the decimal encoding.
fn id_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), Just(1u64), Just(u64::MAX), 0u64..=u64::MAX]
}

fn version_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(1usize), Just(usize::MAX), 0usize..10_000]
}

/// Payloads biased toward framing hazards: empty, lone CR, lone LF, an
/// embedded CRLF (must not terminate the frame early), and random bytes.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        Just(Vec::new()),
        Just(b"\r".to_vec()),
        Just(b"\n".to_vec()),
        Just(b"\r\n".to_vec()),
        Just(b"x\r\ny".to_vec()),
        proptest::collection::vec(0u8..=255, 0..300),
    ]
}

fn command_strategy() -> impl Strategy<Value = OwnedCommand> {
    prop_oneof![
        Just(OwnedCommand::Ping),
        Just(OwnedCommand::Metrics),
        (id_strategy(), version_strategy())
            .prop_map(|(object, version)| OwnedCommand::Get { object, version }),
        (id_strategy(), version_strategy())
            .prop_map(|(object, version)| OwnedCommand::Prefix { object, version }),
        (id_strategy(), payload_strategy())
            .prop_map(|(object, payload)| OwnedCommand::Append { object, payload }),
        (0usize..64, 0usize..64).prop_map(|(shard, node)| OwnedCommand::Fail { shard, node }),
        (0usize..64, 0usize..64).prop_map(|(shard, node)| OwnedCommand::Revive { shard, node }),
    ]
}

/// ASCII text without CR/LF (which the reply writers sanitize by design).
fn message_strategy() -> impl Strategy<Value = String> {
    let charset: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ._-";
    let n = charset.len();
    proptest::collection::vec(0usize..n, 0..40)
        .prop_map(move |indices| indices.into_iter().map(|i| charset[i] as char).collect())
}

fn hostile_length_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(format!("{}", MAX_PAYLOAD as u64 + 1)),
        Just("-1".to_string()),
        Just("-99999".to_string()),
        Just("+5".to_string()),
        Just("18446744073709551616".to_string()),
        Just("99999999999999999999999999".to_string()),
        Just("0x10".to_string()),
        Just("5.0".to_string()),
    ]
}

proptest! {
    /// encode → parse is the identity, and consumes exactly the frame.
    #[test]
    fn encode_parse_round_trip(command in command_strategy()) {
        let mut buf = Vec::new();
        encode_command(&command.borrow(), &mut buf);
        match parse_command(&buf) {
            Parsed::Complete { command: parsed, consumed } => {
                prop_assert_eq!(parsed, command.borrow());
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "round trip failed: {:?}", other),
        }
    }

    /// Every strict prefix of a valid frame is `Incomplete` — a frame torn
    /// at ANY byte boundary re-parses once the rest arrives — and the parse
    /// result is identical whatever suffix follows the frame.
    #[test]
    fn torn_at_every_boundary_then_completed(
        command in command_strategy(),
        trailer in proptest::collection::vec(0u8..=255, 0..40),
    ) {
        let mut buf = Vec::new();
        encode_command(&command.borrow(), &mut buf);
        for cut in 0..buf.len() {
            prop_assert_eq!(
                parse_command(&buf[..cut]),
                Parsed::Incomplete,
                "cut at {} of {}", cut, buf.len()
            );
        }
        // With arbitrary pipelined bytes appended, the first frame parses
        // identically and consumes only itself.
        let mut extended = buf.clone();
        extended.extend_from_slice(&trailer);
        match parse_command(&extended) {
            Parsed::Complete { command: parsed, consumed } => {
                prop_assert_eq!(parsed, command.borrow());
                prop_assert_eq!(consumed, buf.len());
            }
            other => prop_assert!(false, "suffix changed the parse: {:?}", other),
        }
    }

    /// A pipeline of concatenated frames parses back to the same sequence,
    /// frame by frame, regardless of how the commands interleave.
    #[test]
    fn pipelined_concatenation_preserves_sequence(
        commands in proptest::collection::vec(command_strategy(), 1..12),
    ) {
        let mut buf = Vec::new();
        for command in &commands {
            encode_command(&command.borrow(), &mut buf);
        }
        let mut at = 0;
        for (i, want) in commands.iter().enumerate() {
            match parse_command(&buf[at..]) {
                Parsed::Complete { command: parsed, consumed } => {
                    prop_assert_eq!(parsed, want.borrow(), "frame {}", i);
                    at += consumed;
                }
                other => {
                    prop_assert!(false, "frame {} failed: {:?}", i, other);
                }
            }
        }
        prop_assert_eq!(at, buf.len(), "pipeline left residue");
    }

    /// The parser never panics on arbitrary bytes, and whatever it accepts
    /// it accepts with a sane `consumed`.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..2048)) {
        match parse_command(&bytes) {
            Parsed::Complete { consumed, .. } => {
                prop_assert!(consumed > 0 && consumed <= bytes.len());
            }
            Parsed::Incomplete | Parsed::Malformed { .. } => {}
        }
        match parse_reply(&bytes) {
            ParsedReply::Complete { consumed, .. } => {
                prop_assert!(consumed > 0 && consumed <= bytes.len());
            }
            ParsedReply::Incomplete | ParsedReply::Malformed { .. } => {}
        }
    }

    /// Hostile APPEND length tokens — signed, overflowing, over the payload
    /// cap, non-decimal — are `Malformed`, never `Complete`, never a panic.
    #[test]
    fn hostile_append_lengths_rejected(
        object in id_strategy(),
        length in hostile_length_strategy(),
    ) {
        let frame = format!("APPEND {object} {length}\r\nhello\r\n");
        prop_assert!(
            matches!(parse_command(frame.as_bytes()), Parsed::Malformed { .. }),
            "{:?} was not rejected", frame
        );
    }

    /// Reply encodings round-trip under every torn split.
    #[test]
    fn reply_round_trip_and_tearing(
        message in message_strategy(),
        value in 0u64..=u64::MAX,
        bulk in proptest::collection::vec(0u8..=255, 0..200),
        items in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..50), 0..6),
    ) {
        let mut buf = Vec::new();
        proto::write_simple(&mut buf, &message);
        proto::write_error(&mut buf, &message);
        proto::write_int(&mut buf, value);
        proto::write_bulk(&mut buf, &bulk);
        proto::write_array_header(&mut buf, items.len());
        for item in &items {
            proto::write_bulk(&mut buf, item);
        }
        let expected = [
            Reply::Simple(message.clone()),
            Reply::Error(message.clone()),
            Reply::Int(value),
            Reply::Bulk(bulk),
            Reply::Array(items),
        ];
        let mut at = 0;
        for (i, want) in expected.iter().enumerate() {
            match parse_reply(&buf[at..]) {
                ParsedReply::Complete { reply, consumed } => {
                    prop_assert_eq!(&reply, want, "reply {}", i);
                    // Every strict prefix of this frame is Incomplete.
                    for cut in 0..consumed {
                        prop_assert_eq!(
                            parse_reply(&buf[at..at + cut]),
                            ParsedReply::Incomplete,
                            "reply {} cut {}", i, cut
                        );
                    }
                    at += consumed;
                }
                other => {
                    prop_assert!(false, "reply {} failed: {:?}", i, other);
                }
            }
        }
        prop_assert_eq!(at, buf.len());
    }
}
