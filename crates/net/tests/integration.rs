//! End-to-end tests: a real `Server` over loopback sockets, exercised by
//! `NetClient`s — single calls, pipelines, concurrent clients, membership
//! chaos, malformed input, and the graceful-shutdown contract.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use sec_engine::{ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_net::proto::{self, Command};
use sec_net::{NetClient, Reply, Server, ServerConfig};
use sec_versioning::{ArchiveConfig, EncodingStrategy};

/// `(n, k) = (6, 3)` Basic SEC over 4 shards, with a small delta cache.
fn test_cluster() -> Arc<SecCluster> {
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid archive config");
    Arc::new(SecCluster::with_cache(config, 4, 4).expect("cluster"))
}

/// Deterministic version payload, distinct per `(object, version)`.
fn payload(id: u64, version: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| (id as usize + version * 31 + i) as u8).collect()
}

fn populate(cluster: &SecCluster, objects: u64, versions: usize, len: usize) {
    for id in 0..objects {
        let history: Vec<Vec<u8>> = (1..=versions).map(|v| payload(id, v, len)).collect();
        cluster.append_all(ObjectId(id), &history).expect("populate");
    }
}

fn start_server(cluster: &Arc<SecCluster>, workers: usize) -> sec_net::ServerHandle {
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    Server::start(Arc::clone(cluster), "127.0.0.1:0", config).expect("server start")
}

#[test]
fn single_calls_round_trip_every_command() {
    let cluster = test_cluster();
    populate(&cluster, 4, 3, 96);
    let server = start_server(&cluster, 2);
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    client.ping().expect("ping");

    // Every stored version comes back byte-exact vs the direct cluster call.
    for id in 0..4u64 {
        for v in 1..=3usize {
            let direct = cluster.get_version(ObjectId(id), v).expect("direct get");
            let wire = client.get(ObjectId(id), v).expect("io").expect("reply");
            assert_eq!(wire, *direct.data, "object {id} version {v}");
        }
    }

    // PREFIX returns the first l versions in order.
    let prefix = client.prefix(ObjectId(2), 3).expect("io").expect("reply");
    assert_eq!(prefix.len(), 3);
    for (i, version) in prefix.iter().enumerate() {
        assert_eq!(*version, payload(2, i + 1, 96), "prefix version {}", i + 1);
    }

    // APPEND returns the new 1-based version id and the data is served back.
    let new_payload = payload(9, 4, 96);
    let version = client
        .append(ObjectId(9), &new_payload)
        .expect("io")
        .expect("reply");
    assert_eq!(version, 1);
    assert_eq!(
        client.get(ObjectId(9), 1).expect("io").expect("reply"),
        new_payload
    );

    // FAIL / REVIVE go through; a GET between them still succeeds because
    // (6, 3) tolerates one dead node.
    client.fail(0, 1).expect("io").expect("fail");
    let degraded = client.get(ObjectId(0), 1);
    client.revive(0, 1).expect("io").expect("revive");
    assert_eq!(
        degraded.expect("io").expect("reply"),
        payload(0, 1, 96),
        "read under one failed node"
    );

    // METRICS is JSON-ish and reflects the appended state.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.starts_with('{') && metrics.ends_with('}'), "{metrics}");
    assert!(metrics.contains("\"objects\":5"), "{metrics}");

    // Error paths come back as server-side errors, not transport failures.
    assert!(client.get(ObjectId(0), 99).expect("io").is_err());
    assert!(client.get(ObjectId(777), 1).expect("io").is_err());

    drop(client);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn pipelined_batches_preserve_request_order() {
    let cluster = test_cluster();
    populate(&cluster, 8, 4, 64);
    let server = start_server(&cluster, 2);
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // A long mixed pipeline: GET runs (batched server-side) interleaved
    // with PINGs that force batch boundaries.
    let mut commands = Vec::new();
    let mut expected: Vec<Option<(u64, usize)>> = Vec::new();
    for round in 0..50usize {
        for id in 0..8u64 {
            let version = (round + id as usize) % 4 + 1;
            commands.push(Command::Get {
                object: ObjectId(id),
                version,
            });
            expected.push(Some((id, version)));
        }
        commands.push(Command::Ping);
        expected.push(None);
    }
    let replies = client.pipeline(&commands).expect("pipeline");
    assert_eq!(replies.len(), commands.len());
    for (reply, want) in replies.iter().zip(&expected) {
        match want {
            Some((id, version)) => match reply {
                Reply::Bulk(data) => assert_eq!(*data, payload(*id, *version, 64)),
                other => panic!("expected bulk for {id}/{version}, got {other:?}"),
            },
            None => assert_eq!(*reply, Reply::Simple("PONG".to_string())),
        }
    }

    server.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_clients_under_fail_revive_chaos_stay_byte_exact() {
    let cluster = test_cluster();
    populate(&cluster, 6, 4, 128);
    let server = start_server(&cluster, 3);
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Chaos: cycle FAIL/REVIVE across shard 0's nodes and APPEND fresh
    // versions to a dedicated object, over the wire, while readers run.
    let chaos = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("chaos connect");
            let mut node = 0usize;
            let mut round = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                client.fail(0, node).expect("io").expect("fail");
                let extra = payload(100, round, 128);
                client.append(ObjectId(100), &extra).expect("io").expect("append");
                client.revive(0, node).expect("io").expect("revive");
                node = (node + 1) % 3;
                round += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            round
        })
    };

    // Readers: pipelined GETs against the immutable pre-populated versions.
    // Every reply must be either a clean `-ERR` (too many dead nodes at that
    // instant) or the exact bytes — never garbage, never out of order.
    let readers: Vec<_> = (0..4)
        .map(|reader| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("reader connect");
                let mut errors = 0usize;
                let mut ok = 0usize;
                for round in 0..60usize {
                    let commands: Vec<Command<'_>> = (0..6u64)
                        .map(|id| Command::Get {
                            object: ObjectId(id),
                            version: (reader + round + id as usize) % 4 + 1,
                        })
                        .collect();
                    let replies = client.pipeline(&commands).expect("pipeline io");
                    for (reply, command) in replies.iter().zip(&commands) {
                        let Command::Get { object, version } = command else {
                            unreachable!()
                        };
                        match reply {
                            Reply::Bulk(data) => {
                                assert_eq!(
                                    *data,
                                    payload(object.0, *version, 128),
                                    "object {} version {version}",
                                    object.0
                                );
                                ok += 1;
                            }
                            Reply::Error(_) => errors += 1,
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                }
                (ok, errors)
            })
        })
        .collect();

    let mut total_ok = 0;
    for reader in readers {
        let (ok, _errors) = reader.join().expect("reader thread");
        total_ok += ok;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let chaos_rounds = chaos.join().expect("chaos thread");

    assert!(total_ok > 0, "no successful read survived the chaos");
    assert!(chaos_rounds > 0, "chaos thread never completed a round");

    // The chaos appends are all serveable afterwards.
    let mut client = NetClient::connect(addr).expect("connect");
    let appended = cluster.version_count(ObjectId(100)).unwrap_or(0);
    assert_eq!(appended, chaos_rounds);
    for v in 1..=appended {
        let wire = client.get(ObjectId(100), v).expect("io").expect("reply");
        assert_eq!(wire, payload(100, v - 1, 128), "chaos append version {v}");
    }

    server.shutdown().expect("clean shutdown");
}

#[test]
fn torn_frames_across_writes_still_parse() {
    let cluster = test_cluster();
    populate(&cluster, 1, 1, 48);
    let server = start_server(&cluster, 1);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Dribble an APPEND and a GET one byte at a time across the socket.
    let mut frames = Vec::new();
    proto::encode_command(
        &Command::Append {
            object: ObjectId(0),
            payload: b"torn-frame-payload-torn-frame-payload-torn-frame",
        },
        &mut frames,
    );
    proto::encode_command(
        &Command::Get {
            object: ObjectId(0),
            version: 2,
        },
        &mut frames,
    );
    for byte in &frames {
        stream.write_all(std::slice::from_ref(byte)).expect("write");
        if byte % 7 == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    // Replies: `:2` for the append (second version), then the bulk.
    let mut rbuf = Vec::new();
    let mut replies = Vec::new();
    let mut chunk = [0u8; 4096];
    while replies.len() < 2 {
        match proto::parse_reply(&rbuf) {
            sec_net::ParsedReply::Complete { reply, consumed } => {
                rbuf.drain(..consumed);
                replies.push(reply);
                continue;
            }
            sec_net::ParsedReply::Incomplete => {}
            sec_net::ParsedReply::Malformed { reason } => panic!("malformed reply: {reason}"),
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed early");
        rbuf.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(replies[0], Reply::Int(2));
    assert_eq!(
        replies[1],
        Reply::Bulk(b"torn-frame-payload-torn-frame-payload-torn-frame".to_vec())
    );

    server.shutdown().expect("clean shutdown");
}

#[test]
fn malformed_frame_gets_an_error_then_the_connection_closes() {
    let cluster = test_cluster();
    populate(&cluster, 1, 1, 32);
    let server = start_server(&cluster, 1);

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(b"APPEND obj -5\r\n").expect("write");

    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read to EOF");
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("-ERR"), "got: {text:?}");

    server.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_drains_pipelined_requests_already_received() {
    let cluster = test_cluster();
    populate(&cluster, 2, 2, 64);
    let server = start_server(&cluster, 2);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut frames = Vec::new();
    let count = 64usize;
    for i in 0..count {
        proto::encode_command(
            &Command::Get {
                object: ObjectId((i % 2) as u64),
                version: i % 2 + 1,
            },
            &mut frames,
        );
    }
    stream.write_all(&frames).expect("write");
    // Give the worker a moment to read the burst, then shut down.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown().expect("clean shutdown");

    // Every request the server had read must have been answered before the
    // socket closed — and the replies are well-formed and byte-exact.
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("drain to EOF");
    let mut replies = 0usize;
    while !buf.is_empty() {
        match proto::parse_reply(&buf) {
            sec_net::ParsedReply::Complete { reply, consumed } => {
                let want = payload((replies % 2) as u64, replies % 2 + 1, 64);
                assert_eq!(reply, Reply::Bulk(want), "reply {replies}");
                buf.drain(..consumed);
                replies += 1;
            }
            sec_net::ParsedReply::Incomplete => panic!("truncated reply after {replies}"),
            sec_net::ParsedReply::Malformed { reason } => panic!("malformed: {reason}"),
        }
    }
    assert_eq!(replies, count, "drain served a prefix, not the whole burst");
}

#[test]
fn poll_fallback_backend_serves_the_same_protocol() {
    // Force the portable reactor for this server (the env var is read at
    // `Poller::new`, so concurrently running tests merely pick it up too —
    // both backends must serve identically anyway).
    std::env::set_var("SEC_NET_REACTOR", "poll");
    let cluster = test_cluster();
    populate(&cluster, 2, 2, 64);
    let server = start_server(&cluster, 2);
    let result = (|| -> std::io::Result<()> {
        let mut client = NetClient::connect(server.local_addr())?;
        client.ping()?;
        let commands: Vec<Command<'_>> = (0..2u64)
            .flat_map(|id| {
                (1..=2usize).map(move |version| Command::Get {
                    object: ObjectId(id),
                    version,
                })
            })
            .collect();
        let replies = client.pipeline(&commands)?;
        for (reply, command) in replies.iter().zip(&commands) {
            let Command::Get { object, version } = command else {
                unreachable!()
            };
            assert_eq!(*reply, Reply::Bulk(payload(object.0, *version, 64)));
        }
        Ok(())
    })();
    std::env::remove_var("SEC_NET_REACTOR");
    result.expect("poll-backend round trip");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn backpressure_pauses_and_resumes_a_slow_reader() {
    let cluster = test_cluster();
    // Large-ish payloads so a pipelined burst overflows a tiny high-water.
    populate(&cluster, 1, 1, 4096);
    let config = ServerConfig {
        workers: 1,
        high_water: 8 * 1024,
        low_water: 2 * 1024,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&cluster), "127.0.0.1:0", config).expect("server");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut frames = Vec::new();
    let count = 256usize;
    for _ in 0..count {
        proto::encode_command(
            &Command::Get {
                object: ObjectId(0),
                version: 1,
            },
            &mut frames,
        );
    }
    stream.write_all(&frames).expect("write");

    // Read slowly in small chunks: the server must pause reading when its
    // write buffer passes high-water and resume as we drain, and every
    // reply must still arrive intact.
    let mut rbuf = Vec::new();
    let mut replies = 0usize;
    let mut chunk = [0u8; 1024];
    let want = payload(0, 1, 4096);
    while replies < count {
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed after {replies} replies");
        rbuf.extend_from_slice(&chunk[..n]);
        std::thread::sleep(Duration::from_micros(100));
        loop {
            match proto::parse_reply(&rbuf) {
                sec_net::ParsedReply::Complete { reply, consumed } => {
                    assert_eq!(reply, Reply::Bulk(want.clone()), "reply {replies}");
                    rbuf.drain(..consumed);
                    replies += 1;
                }
                sec_net::ParsedReply::Incomplete => break,
                sec_net::ParsedReply::Malformed { reason } => panic!("malformed: {reason}"),
            }
        }
    }

    server.shutdown().expect("clean shutdown");
}
