//! `sec-netserver` — stand up a [`sec_net::Server`] over a freshly
//! populated [`SecCluster`] and serve until told to stop.
//!
//! ```text
//! sec-netserver [--addr HOST:PORT] [--shards S] [--workers W] [--cache C]
//!               [--objects O] [--versions V] [--payload BYTES]
//! ```
//!
//! The cluster is pre-populated with `--objects` objects (ids `0..O`), each
//! holding `--versions` versions of `--payload` bytes, so load generators
//! can `GET` immediately. Once listening, the process prints
//! `READY <addr>` on stdout (port 0 in `--addr` picks a free port — the
//! printed address carries the real one) and then blocks on stdin: a
//! `shutdown` line or EOF triggers the graceful drain, after which
//! `SHUTDOWN CLEAN` is printed.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;

use sec_engine::{ObjectId, SecCluster};
use sec_erasure::GeneratorForm;
use sec_net::{Server, ServerConfig};
use sec_versioning::{ArchiveConfig, EncodingStrategy};

struct Args {
    addr: String,
    shards: usize,
    workers: usize,
    cache: usize,
    objects: u64,
    versions: usize,
    payload: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            workers: 0,
            cache: 8,
            objects: 16,
            versions: 4,
            payload: 3 * 256,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--shards" => args.shards = parse("--shards", &value("--shards")?)?,
            "--workers" => args.workers = parse("--workers", &value("--workers")?)?,
            "--cache" => args.cache = parse("--cache", &value("--cache")?)?,
            "--objects" => args.objects = parse("--objects", &value("--objects")?)?,
            "--versions" => args.versions = parse("--versions", &value("--versions")?)?,
            "--payload" => args.payload = parse("--payload", &value("--payload")?)?,
            "--help" | "-h" => {
                return Err(
                    "usage: sec-netserver [--addr HOST:PORT] [--shards S] [--workers W] \
                     [--cache C] [--objects O] [--versions V] [--payload BYTES]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad value for {name}: {raw}"))
}

fn populate(cluster: &SecCluster, objects: u64, versions: usize, payload: usize) {
    for id in 0..objects {
        let history: Vec<Vec<u8>> = (0..versions)
            .map(|v| (0..payload).map(|i| (id as usize + v * 31 + i) as u8).collect())
            .collect();
        if let Err(e) = cluster.append_all(ObjectId(id), &history) {
            eprintln!("populate object {id}: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let config = match ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
    {
        Ok(config) => config,
        Err(e) => {
            eprintln!("archive config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match SecCluster::with_cache(config, args.shards, args.cache) {
        Ok(cluster) => Arc::new(cluster),
        Err(e) => {
            eprintln!("cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    populate(&cluster, args.objects, args.versions, args.payload);

    let raised = sec_net::sys::raise_nofile(40_000);
    let server_config = ServerConfig {
        workers: args.workers,
        ..ServerConfig::default()
    };
    let handle = match Server::start(Arc::clone(&cluster), args.addr.as_str(), server_config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("listen on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.local_addr().to_string();
    eprintln!(
        "serving {} objects x {} versions on {addr} (fd limit {raised})",
        args.objects, args.versions
    );
    println!("READY {addr}");

    // Block until the driver says stop (or closes our stdin).
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) if line.trim().eq_ignore_ascii_case("shutdown") => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    match handle.shutdown() {
        Ok(()) => {
            println!("SHUTDOWN CLEAN");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shutdown: {e}");
            ExitCode::FAILURE
        }
    }
}
