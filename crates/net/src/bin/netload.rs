//! `sec-netload` — loopback load generator for `sec-netserver`.
//!
//! ```text
//! sec-netload --addr HOST:PORT [--connections N] [--pipeline D]
//!             [--duration-ms MS] [--rate REQ_PER_S] [--seed S]
//!             [--objects O] [--versions V] [--chaos] [--json]
//! ```
//!
//! Drives `GET`s round-robin over the first `--objects` objects and
//! `--versions` versions (matching `sec-netserver`'s pre-population
//! defaults). `--rate` switches from the closed loop to open-loop Poisson
//! arrivals. `--chaos` runs a side thread that cycles `FAIL`/`REVIVE` on
//! shard 0's nodes and appends fresh versions mid-stream, to exercise the
//! server under membership churn. The connection count is capped to what
//! `RLIMIT_NOFILE` actually allows (after trying to raise it) — the cap is
//! logged, never silent.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sec_engine::ObjectId;
use sec_net::load::{run_get_load, LoadConfig};
use sec_net::NetClient;

struct Args {
    addr: String,
    connections: usize,
    pipeline: usize,
    duration_ms: u64,
    rate: Option<f64>,
    seed: u64,
    objects: u64,
    versions: usize,
    chaos: bool,
    json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: String::new(),
            connections: 64,
            pipeline: 16,
            duration_ms: 1000,
            rate: None,
            seed: 0x5ec,
            objects: 16,
            versions: 4,
            chaos: false,
            json: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--connections" => args.connections = parse("--connections", &value("--connections")?)?,
            "--pipeline" => args.pipeline = parse("--pipeline", &value("--pipeline")?)?,
            "--duration-ms" => args.duration_ms = parse("--duration-ms", &value("--duration-ms")?)?,
            "--rate" => args.rate = Some(parse("--rate", &value("--rate")?)?),
            "--seed" => args.seed = parse("--seed", &value("--seed")?)?,
            "--objects" => args.objects = parse("--objects", &value("--objects")?)?,
            "--versions" => args.versions = parse("--versions", &value("--versions")?)?,
            "--chaos" => args.chaos = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                return Err(
                    "usage: sec-netload --addr HOST:PORT [--connections N] [--pipeline D] \
                     [--duration-ms MS] [--rate REQ_PER_S] [--seed S] [--objects O] \
                     [--versions V] [--chaos] [--json]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad value for {name}: {raw}"))
}

/// FAIL/REVIVE one node at a time on shard 0 and append fresh versions,
/// on a dedicated connection, until `stop` flips.
fn chaos_loop(addr: SocketAddr, stop: &AtomicBool) {
    let Ok(mut client) = NetClient::connect(addr) else {
        eprintln!("chaos: connect failed, skipping");
        return;
    };
    let mut node = 0usize;
    let mut round = 0u8;
    // audit: atomic ok — stop is a lone shutdown flag; the chaos loop only
    // needs to observe it eventually, no other state is published through it.
    while !stop.load(Ordering::Relaxed) {
        if let Err(e) = client.fail(0, node) {
            eprintln!("chaos: FAIL transport error: {e}");
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
        let payload: Vec<u8> = (0..768).map(|i| (i as u8) ^ round).collect();
        if let Err(e) = client.append(ObjectId(0), &payload) {
            eprintln!("chaos: APPEND transport error: {e}");
            return;
        }
        if let Err(e) = client.revive(0, node) {
            eprintln!("chaos: REVIVE transport error: {e}");
            return;
        }
        node = (node + 1) % 3;
        round = round.wrapping_add(1);
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let addr: SocketAddr = match args.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(addr) => addr,
        None => {
            eprintln!("cannot resolve {}", args.addr);
            return ExitCode::FAILURE;
        }
    };

    // Each load connection costs one fd; keep headroom for the reactor,
    // stdio and the chaos client.
    let limit = sec_net::sys::raise_nofile((args.connections as u64 + 64).max(1024));
    let max_conns = (limit.saturating_sub(64)) as usize;
    let connections = if args.connections > max_conns {
        eprintln!(
            "capping connections {} -> {max_conns} (RLIMIT_NOFILE {limit})",
            args.connections
        );
        max_conns
    } else {
        args.connections
    };

    let targets: Vec<(ObjectId, usize)> = (0..args.objects.max(1))
        .flat_map(|id| (1..=args.versions.max(1)).map(move |v| (ObjectId(id), v)))
        .collect();
    let config = LoadConfig {
        connections,
        pipeline: args.pipeline,
        duration: Duration::from_millis(args.duration_ms),
        open_loop_rate: args.rate,
        seed: args.seed,
    };

    let stop = Arc::new(AtomicBool::new(false));
    let chaos_thread = args.chaos.then(|| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || chaos_loop(addr, &stop))
    });

    let result = run_get_load(addr, &targets, &config);

    // audit: atomic ok — same lone flag; thread::join below is the real
    // synchronization point for everything the chaos thread wrote.
    stop.store(true, Ordering::Relaxed);
    if let Some(thread) = chaos_thread {
        let _ = thread.join();
    }

    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.json {
        println!(
            "{{\"connections\":{},\"pipeline\":{},\"requests\":{},\"errors\":{},\
             \"elapsed_ms\":{},\"req_per_sec\":{:.1},\"p50_us\":{},\"p99_us\":{},\
             \"max_us\":{},\"backend\":\"{}\"}}",
            report.connections,
            report.pipeline,
            report.requests,
            report.errors,
            report.elapsed.as_millis(),
            report.req_per_sec,
            report.p50_us,
            report.p99_us,
            report.max_us,
            report.backend,
        );
    } else {
        println!(
            "{} conns x pipeline {} ({}): {} requests ({} errors) in {:.2}s = {:.0} req/s, \
             p50 {}us p99 {}us max {}us",
            report.connections,
            report.pipeline,
            report.backend,
            report.requests,
            report.errors,
            report.elapsed.as_secs_f64(),
            report.req_per_sec,
            report.p50_us,
            report.p99_us,
            report.max_us,
        );
    }
    ExitCode::SUCCESS
}
