//! The RESP-like wire protocol: incremental zero-copy frame parsing plus
//! request/reply encoders.
//!
//! # Grammar
//!
//! Requests are CRLF-terminated lines of space-separated tokens; `APPEND`
//! is followed by a binary payload and a trailing CRLF:
//!
//! ```text
//! PING\r\n
//! GET <obj> <ver>\r\n
//! PREFIX <obj> <ver>\r\n
//! APPEND <obj> <len>\r\n<len raw bytes>\r\n
//! FAIL <shard> <node>\r\n
//! REVIVE <shard> <node>\r\n
//! METRICS\r\n
//! ```
//!
//! `<obj>` is either a decimal 64-bit object id or an object *name* (any
//! other token, hashed through [`ObjectId::from_name`] — so `GET logs 3`
//! and `GET 7818597926421802027 3` address the same object). Replies use
//! the RESP shapes `+simple`, `-ERR message`, `:integer`, `$len` bulk and
//! `*count` arrays of bulks.
//!
//! # Incremental parsing
//!
//! [`parse_command`] and [`parse_reply`] consume a prefix of a byte buffer
//! and either return a complete frame plus its exact byte length, ask for
//! more bytes ([`Parsed::Incomplete`]), or reject the frame with a reason
//! ([`Parsed::Malformed`]) — never panicking, whatever the split: the
//! caller may feed bytes one at a time and re-parse after every read. A
//! malformed frame poisons the stream (there is no reliable resync point in
//! a binary protocol), so the server replies `-ERR` and closes.
//!
//! This module is under `sec-audit`'s panic-freedom rule: no unwraps and no
//! unchecked indexing. Payload slices borrow from the input buffer
//! (zero-copy); the server copies only into its write buffer.

use sec_engine::ObjectId;

/// Commands larger than this are rejected outright (a line, not a payload).
pub const MAX_LINE: usize = 1024;

/// Upper bound on an `APPEND` payload; larger lengths are rejected before
/// any buffering happens.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// One parsed request frame. The `APPEND` payload borrows the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command<'a> {
    /// Liveness probe.
    Ping,
    /// Retrieve one version of an object.
    Get {
        /// Target object.
        object: ObjectId,
        /// 1-based version number.
        version: usize,
    },
    /// Retrieve versions `1..=version` of an object.
    Prefix {
        /// Target object.
        object: ObjectId,
        /// 1-based version number.
        version: usize,
    },
    /// Append the next version of an object.
    Append {
        /// Target object.
        object: ObjectId,
        /// The version's bytes (borrowed from the input buffer).
        payload: &'a [u8],
    },
    /// Fail a node of a shard's group.
    Fail {
        /// Shard index.
        shard: usize,
        /// Node index within the shard's group.
        node: usize,
    },
    /// Revive a node of a shard's group.
    Revive {
        /// Shard index.
        shard: usize,
        /// Node index within the shard's group.
        node: usize,
    },
    /// Snapshot the cluster metrics as a JSON bulk.
    Metrics,
}

/// Outcome of parsing one request frame from the front of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parsed<'a> {
    /// A complete frame occupying exactly `consumed` leading bytes.
    Complete {
        /// The decoded command.
        command: Command<'a>,
        /// Bytes of the buffer this frame occupied.
        consumed: usize,
    },
    /// The buffer holds only a (valid so far) frame prefix; read more.
    Incomplete,
    /// The leading frame can never become valid.
    Malformed {
        /// Human-readable rejection reason (stable, used in `-ERR` replies).
        reason: &'static str,
    },
}

/// One parsed reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+message` simple string.
    Simple(String),
    /// `-ERR message` error string (without the leading `-`).
    Error(String),
    /// `:value` integer.
    Int(u64),
    /// `$len` bulk bytes.
    Bulk(Vec<u8>),
    /// `*count` array of bulks.
    Array(Vec<Vec<u8>>),
}

/// Outcome of parsing one reply frame from the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedReply {
    /// A complete reply occupying exactly `consumed` leading bytes.
    Complete {
        /// The decoded reply.
        reply: Reply,
        /// Bytes of the buffer this frame occupied.
        consumed: usize,
    },
    /// The buffer holds only a reply prefix; read more.
    Incomplete,
    /// The leading reply frame can never become valid.
    Malformed {
        /// Human-readable rejection reason.
        reason: &'static str,
    },
}

/// Locates the first CRLF within the window `buf[..max]`, returning the
/// index of the `\r`.
fn find_crlf(buf: &[u8], max: usize) -> Option<usize> {
    let window = buf.get(..buf.len().min(max))?;
    window.windows(2).position(|pair| pair == b"\r\n")
}

/// Checked decimal parse; rejects empty tokens, non-digits and overflow.
fn parse_u64(token: &[u8]) -> Option<u64> {
    if token.is_empty() || token.len() > 20 {
        return None;
    }
    let mut value: u64 = 0;
    for &b in token {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(value)
}

/// An object token: a decimal id, or any other token hashed as a name.
fn parse_object(token: &[u8]) -> Option<ObjectId> {
    if token.is_empty() {
        return None;
    }
    if let Some(id) = parse_u64(token) {
        return Some(ObjectId(id));
    }
    let name = core::str::from_utf8(token).ok()?;
    Some(ObjectId::from_name(name))
}

fn parse_usize(token: &[u8]) -> Option<usize> {
    parse_u64(token).and_then(|v| usize::try_from(v).ok())
}

/// Parses one request frame from the front of `buf`.
///
/// See the module docs for the grammar; `Incomplete` is returned for any
/// strict prefix of a valid frame, so torn frames at arbitrary byte
/// boundaries re-parse cleanly once more bytes arrive.
pub fn parse_command(buf: &[u8]) -> Parsed<'_> {
    let Some(line_end) = find_crlf(buf, MAX_LINE) else {
        if buf.len() >= MAX_LINE {
            return Parsed::Malformed {
                reason: "command line too long",
            };
        }
        return Parsed::Incomplete;
    };
    let Some(line) = buf.get(..line_end) else {
        return Parsed::Incomplete;
    };
    let consumed_line = line_end + 2;
    let mut tokens = line.split(|&b| b == b' ');
    let Some(word) = tokens.next() else {
        return Parsed::Malformed {
            reason: "empty command",
        };
    };
    let arg1 = tokens.next();
    let arg2 = tokens.next();
    if tokens.next().is_some() {
        return Parsed::Malformed {
            reason: "too many arguments",
        };
    }
    let two_naturals = |reason: &'static str| -> Result<(usize, usize), Parsed<'static>> {
        match (arg1.and_then(parse_usize), arg2.and_then(parse_usize)) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(Parsed::Malformed { reason }),
        }
    };
    let object_and_version = |reason: &'static str| -> Result<(ObjectId, usize), Parsed<'static>> {
        match (arg1.and_then(parse_object), arg2.and_then(parse_usize)) {
            (Some(o), Some(v)) => Ok((o, v)),
            _ => Err(Parsed::Malformed { reason }),
        }
    };
    let bare = |command: Command<'static>, reason: &'static str| -> Parsed<'static> {
        if arg1.is_some() {
            Parsed::Malformed { reason }
        } else {
            Parsed::Complete {
                command,
                consumed: consumed_line,
            }
        }
    };
    match word {
        b"PING" => bare(Command::Ping, "PING takes no arguments"),
        b"METRICS" => bare(Command::Metrics, "METRICS takes no arguments"),
        b"GET" => match object_and_version("GET wants: GET <obj> <ver>") {
            Ok((object, version)) => Parsed::Complete {
                command: Command::Get { object, version },
                consumed: consumed_line,
            },
            Err(m) => m,
        },
        b"PREFIX" => match object_and_version("PREFIX wants: PREFIX <obj> <ver>") {
            Ok((object, version)) => Parsed::Complete {
                command: Command::Prefix { object, version },
                consumed: consumed_line,
            },
            Err(m) => m,
        },
        b"FAIL" => match two_naturals("FAIL wants: FAIL <shard> <node>") {
            Ok((shard, node)) => Parsed::Complete {
                command: Command::Fail { shard, node },
                consumed: consumed_line,
            },
            Err(m) => m,
        },
        b"REVIVE" => match two_naturals("REVIVE wants: REVIVE <shard> <node>") {
            Ok((shard, node)) => Parsed::Complete {
                command: Command::Revive { shard, node },
                consumed: consumed_line,
            },
            Err(m) => m,
        },
        b"APPEND" => {
            let Some(object) = arg1.and_then(parse_object) else {
                return Parsed::Malformed {
                    reason: "APPEND wants: APPEND <obj> <len>",
                };
            };
            // A length token with a sign (or any non-digit) is rejected, so
            // "negative" lengths can never reach the buffering path.
            let Some(len) = arg2.and_then(parse_usize) else {
                return Parsed::Malformed {
                    reason: "APPEND length must be a non-negative integer",
                };
            };
            if len > MAX_PAYLOAD {
                return Parsed::Malformed {
                    reason: "APPEND payload too large",
                };
            }
            let Some(total) = consumed_line.checked_add(len).and_then(|t| t.checked_add(2)) else {
                return Parsed::Malformed {
                    reason: "APPEND payload too large",
                };
            };
            if buf.len() < total {
                return Parsed::Incomplete;
            }
            let Some(payload) = buf.get(consumed_line..consumed_line + len) else {
                return Parsed::Incomplete;
            };
            match buf.get(consumed_line + len..total) {
                Some(b"\r\n") => Parsed::Complete {
                    command: Command::Append { object, payload },
                    consumed: total,
                },
                _ => Parsed::Malformed {
                    reason: "APPEND payload not CRLF-terminated",
                },
            }
        }
        _ => Parsed::Malformed {
            reason: "unknown command",
        },
    }
}

/// Encodes a request frame in canonical form (object as a decimal id).
/// `parse_command` inverts this exactly.
pub fn encode_command(command: &Command<'_>, out: &mut Vec<u8>) {
    match command {
        Command::Ping => out.extend_from_slice(b"PING\r\n"),
        Command::Metrics => out.extend_from_slice(b"METRICS\r\n"),
        Command::Get { object, version } => {
            push_line(out, format_args!("GET {} {version}", object.0));
        }
        Command::Prefix { object, version } => {
            push_line(out, format_args!("PREFIX {} {version}", object.0));
        }
        Command::Fail { shard, node } => {
            push_line(out, format_args!("FAIL {shard} {node}"));
        }
        Command::Revive { shard, node } => {
            push_line(out, format_args!("REVIVE {shard} {node}"));
        }
        Command::Append { object, payload } => {
            push_line(out, format_args!("APPEND {} {}", object.0, payload.len()));
            out.extend_from_slice(payload);
            out.extend_from_slice(b"\r\n");
        }
    }
}

fn push_line(out: &mut Vec<u8>, args: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    // Vec<u8> Write is infallible; the result is still surfaced not unwrapped.
    let _ = write!(out, "{args}\r\n");
}

/// `+message\r\n`
pub fn write_simple(out: &mut Vec<u8>, message: &str) {
    out.push(b'+');
    push_sanitized(out, message);
    out.extend_from_slice(b"\r\n");
}

/// `-ERR message\r\n` (CR/LF in the message are replaced by spaces so a
/// multi-line error cannot desynchronize the stream).
pub fn write_error(out: &mut Vec<u8>, message: &str) {
    out.extend_from_slice(b"-ERR ");
    push_sanitized(out, message);
    out.extend_from_slice(b"\r\n");
}

/// `:value\r\n`
pub fn write_int(out: &mut Vec<u8>, value: u64) {
    push_line(out, format_args!(":{value}"));
}

/// `$len\r\ndata\r\n`
pub fn write_bulk(out: &mut Vec<u8>, data: &[u8]) {
    push_line(out, format_args!("${}", data.len()));
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// `*count\r\n` (followed by `count` bulks written by the caller).
pub fn write_array_header(out: &mut Vec<u8>, count: usize) {
    push_line(out, format_args!("*{count}"));
}

fn push_sanitized(out: &mut Vec<u8>, message: &str) {
    for &b in message.as_bytes() {
        out.push(if b == b'\r' || b == b'\n' { b' ' } else { b });
    }
}

/// Parses one reply frame from the front of `buf` (the client half of the
/// protocol; incremental exactly like [`parse_command`]).
pub fn parse_reply(buf: &[u8]) -> ParsedReply {
    let Some((&kind, _)) = buf.split_first() else {
        return ParsedReply::Incomplete;
    };
    let Some(line_end) = find_crlf(buf, MAX_LINE) else {
        if buf.len() >= MAX_LINE {
            return ParsedReply::Malformed {
                reason: "reply line too long",
            };
        }
        return ParsedReply::Incomplete;
    };
    let Some(line) = buf.get(1..line_end) else {
        return ParsedReply::Incomplete;
    };
    let consumed_line = line_end + 2;
    match kind {
        b'+' => match core::str::from_utf8(line) {
            Ok(s) => ParsedReply::Complete {
                reply: Reply::Simple(s.to_owned()),
                consumed: consumed_line,
            },
            Err(_) => ParsedReply::Malformed {
                reason: "simple string not UTF-8",
            },
        },
        b'-' => match core::str::from_utf8(line) {
            Ok(s) => ParsedReply::Complete {
                reply: Reply::Error(s.strip_prefix("ERR ").unwrap_or(s).to_owned()),
                consumed: consumed_line,
            },
            Err(_) => ParsedReply::Malformed {
                reason: "error string not UTF-8",
            },
        },
        b':' => match parse_u64(line) {
            Some(value) => ParsedReply::Complete {
                reply: Reply::Int(value),
                consumed: consumed_line,
            },
            None => ParsedReply::Malformed {
                reason: "bad integer reply",
            },
        },
        b'$' => match parse_bulk_at(buf, 0) {
            BulkAt::Complete { data, consumed } => ParsedReply::Complete {
                reply: Reply::Bulk(data),
                consumed,
            },
            BulkAt::Incomplete => ParsedReply::Incomplete,
            BulkAt::Malformed { reason } => ParsedReply::Malformed { reason },
        },
        b'*' => {
            let Some(count) = parse_u64(line).and_then(|v| usize::try_from(v).ok()) else {
                return ParsedReply::Malformed {
                    reason: "bad array header",
                };
            };
            if count > 1 << 20 {
                return ParsedReply::Malformed {
                    reason: "array too large",
                };
            }
            let mut items = Vec::with_capacity(count.min(1024));
            let mut at = consumed_line;
            for _ in 0..count {
                match parse_bulk_at(buf, at) {
                    BulkAt::Complete { data, consumed } => {
                        items.push(data);
                        at = consumed;
                    }
                    BulkAt::Incomplete => return ParsedReply::Incomplete,
                    BulkAt::Malformed { reason } => return ParsedReply::Malformed { reason },
                }
            }
            ParsedReply::Complete {
                reply: Reply::Array(items),
                consumed: at,
            }
        }
        _ => ParsedReply::Malformed {
            reason: "unknown reply type",
        },
    }
}

enum BulkAt {
    Complete { data: Vec<u8>, consumed: usize },
    Incomplete,
    Malformed { reason: &'static str },
}

/// Parses a `$len\r\ndata\r\n` bulk starting at absolute offset `at`;
/// `consumed` is the absolute offset one past the bulk.
fn parse_bulk_at(buf: &[u8], at: usize) -> BulkAt {
    let Some(rest) = buf.get(at..) else {
        return BulkAt::Incomplete;
    };
    match rest.split_first() {
        Some((&b'$', _)) => {}
        Some(_) => {
            return BulkAt::Malformed {
                reason: "expected bulk",
            }
        }
        None => return BulkAt::Incomplete,
    }
    let Some(line_end) = find_crlf(rest, MAX_LINE) else {
        if rest.len() >= MAX_LINE {
            return BulkAt::Malformed {
                reason: "bulk header too long",
            };
        }
        return BulkAt::Incomplete;
    };
    let Some(len) = rest
        .get(1..line_end)
        .and_then(parse_u64)
        .and_then(|v| usize::try_from(v).ok())
    else {
        return BulkAt::Malformed {
            reason: "bad bulk length",
        };
    };
    if len > MAX_PAYLOAD {
        return BulkAt::Malformed {
            reason: "bulk too large",
        };
    }
    let data_start = line_end + 2;
    let Some(total) = data_start.checked_add(len).and_then(|t| t.checked_add(2)) else {
        return BulkAt::Malformed {
            reason: "bulk too large",
        };
    };
    if rest.len() < total {
        return BulkAt::Incomplete;
    }
    let Some(data) = rest.get(data_start..data_start + len) else {
        return BulkAt::Incomplete;
    };
    match rest.get(data_start + len..total) {
        Some(b"\r\n") => BulkAt::Complete {
            data: data.to_vec(),
            consumed: at + total,
        },
        _ => BulkAt::Malformed {
            reason: "bulk not CRLF-terminated",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        let cases: &[(&[u8], Command<'_>)] = &[
            (b"PING\r\n", Command::Ping),
            (b"METRICS\r\n", Command::Metrics),
            (
                b"GET 7 3\r\n",
                Command::Get {
                    object: ObjectId(7),
                    version: 3,
                },
            ),
            (
                b"PREFIX 7 2\r\n",
                Command::Prefix {
                    object: ObjectId(7),
                    version: 2,
                },
            ),
            (b"FAIL 0 2\r\n", Command::Fail { shard: 0, node: 2 }),
            (b"REVIVE 1 0\r\n", Command::Revive { shard: 1, node: 0 }),
            (
                b"APPEND 9 5\r\nhello\r\n",
                Command::Append {
                    object: ObjectId(9),
                    payload: b"hello",
                },
            ),
        ];
        for (bytes, want) in cases {
            match parse_command(bytes) {
                Parsed::Complete { command, consumed } => {
                    assert_eq!(&command, want);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{:?} -> {other:?}", String::from_utf8_lossy(bytes)),
            }
        }
    }

    #[test]
    fn names_hash_like_from_name() {
        match parse_command(b"GET logs 1\r\n") {
            Parsed::Complete {
                command: Command::Get { object, .. },
                ..
            } => assert_eq!(object, ObjectId::from_name("logs")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn torn_frames_are_incomplete() {
        let full = b"APPEND 9 5\r\nhello\r\n";
        for cut in 0..full.len() {
            let parsed = parse_command(&full[..cut]);
            assert_eq!(parsed, Parsed::Incomplete, "cut={cut}");
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        for bytes in [
            b"NOPE\r\n".as_slice(),
            b"GET 1\r\n",
            b"GET 1 2 3\r\n",
            b"PING 1\r\n",
            b"GET 1 -2\r\n",
            b"APPEND 1 -5\r\nhello\r\n",
            b"APPEND 1 99999999999999999999999\r\n",
            b"APPEND 1 5\r\nhelloXY",
            b"\r\n",
        ] {
            assert!(
                matches!(parse_command(bytes), Parsed::Malformed { .. }),
                "{:?}",
                String::from_utf8_lossy(bytes)
            );
        }
        let oversized = format!("APPEND 1 {}\r\n", MAX_PAYLOAD + 1);
        assert!(matches!(
            parse_command(oversized.as_bytes()),
            Parsed::Malformed { .. }
        ));
        let long_line = vec![b'A'; MAX_LINE + 1];
        assert!(matches!(parse_command(&long_line), Parsed::Malformed { .. }));
    }

    #[test]
    fn replies_roundtrip() {
        let mut buf = Vec::new();
        write_simple(&mut buf, "PONG");
        write_error(&mut buf, "boom\r\nline");
        write_int(&mut buf, 42);
        write_bulk(&mut buf, b"data");
        write_array_header(&mut buf, 2);
        write_bulk(&mut buf, b"a");
        write_bulk(&mut buf, b"");
        let mut at = 0;
        let mut replies = Vec::new();
        while at < buf.len() {
            match parse_reply(&buf[at..]) {
                ParsedReply::Complete { reply, consumed } => {
                    replies.push(reply);
                    at += consumed;
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(
            replies,
            vec![
                Reply::Simple("PONG".into()),
                Reply::Error("boom  line".into()),
                Reply::Int(42),
                Reply::Bulk(b"data".to_vec()),
                Reply::Array(vec![b"a".to_vec(), Vec::new()]),
            ]
        );
    }

    #[test]
    fn reply_parser_rejects_garbage() {
        assert!(matches!(parse_reply(b"@x\r\n"), ParsedReply::Malformed { .. }));
        assert!(matches!(parse_reply(b":1x\r\n"), ParsedReply::Malformed { .. }));
        assert!(matches!(parse_reply(b"$-1\r\n"), ParsedReply::Malformed { .. }));
        assert!(matches!(
            parse_reply(b"*2\r\n$1\r\na\r\n:3\r\n"),
            ParsedReply::Malformed { .. }
        ));
        assert_eq!(parse_reply(b""), ParsedReply::Incomplete);
        assert_eq!(parse_reply(b"$4\r\nda"), ParsedReply::Incomplete);
    }
}
