//! A loopback load generator over the wire protocol.
//!
//! Drives `connections` concurrent sockets from one reactor thread in
//! either of two modes:
//!
//! * **closed loop** (`open_loop_rate: None`) — every connection keeps
//!   exactly [`LoadConfig::pipeline`] `GET`s outstanding; a reply
//!   immediately funds the next request. `pipeline: 1` is the classic
//!   one-request-per-flush client, larger depths exercise the server's
//!   batched dispatch.
//! * **open loop** (`open_loop_rate: Some(rate)`) — requests arrive on a
//!   Poisson schedule of `rate` req/s (exponential interarrivals from
//!   [`sec_workload::arrivals::ArrivalProcess`]), assigned to connections
//!   round-robin regardless of what is still outstanding, so queueing delay
//!   shows up in the latency tail instead of throttling the arrival
//!   process.
//!
//! Per-request latency is measured enqueue-to-reply; the report carries
//! sustained req/s plus p50/p99/max microseconds.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use sec_engine::ObjectId;
use sec_workload::arrivals::ArrivalProcess;

use crate::proto::{self, Command, ParsedReply, Reply};
use crate::sys::{Interest, Poller};

/// Parameters of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent TCP connections.
    pub connections: usize,
    /// Outstanding requests per connection (closed loop); 1 disables
    /// pipelining.
    pub pipeline: usize,
    /// How long to keep issuing requests.
    pub duration: Duration,
    /// `Some(rate)` switches to open-loop Poisson arrivals at `rate` req/s
    /// across all connections.
    pub open_loop_rate: Option<f64>,
    /// Seed for the arrival process and target selection offsets.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 1,
            pipeline: 1,
            duration: Duration::from_secs(1),
            open_loop_rate: None,
            seed: 0x5ec,
        }
    }
}

/// Results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections actually driven.
    pub connections: usize,
    /// Pipeline depth of the run.
    pub pipeline: usize,
    /// Replies received (success or `-ERR`).
    pub requests: u64,
    /// `-ERR` replies among them.
    pub errors: u64,
    /// Wall time from first send to last reply.
    pub elapsed: Duration,
    /// `requests / elapsed`.
    pub req_per_sec: f64,
    /// Median enqueue-to-reply latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
    /// Reactor backend the generator ran on.
    pub backend: &'static str,
}

struct LoadConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: VecDeque<Instant>,
    interest: Interest,
    next_target: usize,
}

impl LoadConn {
    fn enqueue_get(&mut self, targets: &[(ObjectId, usize)], now: Instant) {
        // Empty target lists are rejected before the loop starts.
        if let Some(&(object, version)) = targets.get(self.next_target % targets.len()) {
            self.next_target = self.next_target.wrapping_add(1);
            proto::encode_command(&Command::Get { object, version }, &mut self.wbuf);
            self.inflight.push_back(now);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Runs one load generation pass of `GET`s drawn round-robin from
/// `targets`, per `config`. The server must already hold the targeted
/// objects/versions (error replies are counted, not retried).
///
/// # Errors
///
/// Propagates connection failures and protocol violations; a clean run with
/// server-side `-ERR` replies is *not* an error (see [`LoadReport::errors`]).
pub fn run_get_load(
    addr: SocketAddr,
    targets: &[(ObjectId, usize)],
    config: &LoadConfig,
) -> io::Result<LoadReport> {
    if targets.is_empty() || config.connections == 0 || config.pipeline == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "targets, connections and pipeline must be non-empty/non-zero",
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let arrivals = match config.open_loop_rate {
        Some(rate) => Some(ArrivalProcess::poisson(rate).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("bad arrival rate: {e}"))
        })?),
        None => None,
    };

    let mut poller = Poller::new()?;
    let backend = poller.backend_name();
    let mut conns: Vec<LoadConn> = Vec::with_capacity(config.connections);
    for i in 0..config.connections {
        let stream = connect_with_retry(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let conn = LoadConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: VecDeque::new(),
            interest: Interest::READ,
            // Stagger target cursors so connections don't hammer one object
            // in lockstep.
            next_target: i.wrapping_mul(7919),
        };
        use std::os::unix::io::AsRawFd;
        poller.register(conn.stream.as_raw_fd(), i as u64, Interest::READ)?;
        conns.push(conn);
    }

    let mut samples: Vec<u64> = Vec::new();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let start = Instant::now();
    let send_deadline = start + config.duration;
    // After the send window closes, wait this long for stragglers.
    let hard_deadline = send_deadline + Duration::from_secs(10);
    let mut next_arrival = start;
    let mut rr = 0usize;

    // Prime the closed loop (open loop starts sending when arrivals fire).
    if arrivals.is_none() {
        let now = Instant::now();
        for conn in &mut conns {
            for _ in 0..config.pipeline {
                conn.enqueue_get(targets, now);
            }
            let _ = conn.flush();
        }
    }
    update_interests(&mut poller, &mut conns)?;

    let mut events = Vec::new();
    let mut last_reply = start;
    loop {
        let now = Instant::now();
        let sending = now < send_deadline;
        if !sending && conns.iter().all(|c| c.inflight.is_empty()) {
            break;
        }
        if now >= hard_deadline {
            break;
        }
        let timeout_ms = match (&arrivals, sending) {
            (Some(_), true) => {
                let until = next_arrival.saturating_duration_since(now);
                until.as_millis().min(50) as i32
            }
            _ => 50,
        };
        poller.wait(&mut events, timeout_ms)?;

        // Open loop: emit every arrival that is due.
        if let (Some(process), true) = (&arrivals, sending) {
            let mut now = Instant::now();
            while next_arrival <= now && now < send_deadline {
                let idx = rr % conns.len();
                rr = rr.wrapping_add(1);
                if let Some(conn) = conns.get_mut(idx) {
                    conn.enqueue_get(targets, now);
                }
                let gap = process.next_gap(&mut rng);
                next_arrival += Duration::from_secs_f64(gap.min(60.0));
                now = Instant::now();
            }
            for conn in conns.iter_mut() {
                if !conn.wbuf.is_empty() {
                    let _ = conn.flush();
                }
            }
        }

        for &ev in &events {
            let idx = ev.token as usize;
            let Some(conn) = conns.get_mut(idx) else {
                continue;
            };
            if ev.readable {
                read_available(conn)?;
                let mut refills = 0usize;
                loop {
                    match proto::parse_reply(&conn.rbuf) {
                        ParsedReply::Complete { reply, consumed } => {
                            conn.rbuf.drain(..consumed);
                            let now = Instant::now();
                            last_reply = now;
                            if let Some(sent) = conn.inflight.pop_front() {
                                let us = now.duration_since(sent).as_micros() as u64;
                                samples.push(us);
                            }
                            requests += 1;
                            if matches!(reply, Reply::Error(_)) {
                                errors += 1;
                            }
                            refills += 1;
                        }
                        ParsedReply::Incomplete => break,
                        ParsedReply::Malformed { reason } => {
                            return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
                        }
                    }
                }
                // Closed loop: a reply funds the next request; batch the
                // whole refill into one flush.
                if arrivals.is_none() && Instant::now() < send_deadline {
                    let now = Instant::now();
                    for _ in 0..refills {
                        conn.enqueue_get(targets, now);
                    }
                }
            }
            if ev.writable || !conn.wbuf.is_empty() {
                let _ = conn.flush();
            }
        }
        update_interests(&mut poller, &mut conns)?;
    }

    let elapsed = last_reply
        .saturating_duration_since(start)
        .max(Duration::from_micros(1));
    samples.sort_unstable();
    let pct = |p: f64| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
        samples.get(idx.min(samples.len() - 1)).copied().unwrap_or(0)
    };
    Ok(LoadReport {
        connections: config.connections,
        pipeline: config.pipeline,
        requests,
        errors,
        elapsed,
        req_per_sec: requests as f64 / elapsed.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: samples.last().copied().unwrap_or(0),
        backend,
    })
}

fn connect_with_retry(addr: SocketAddr) -> io::Result<TcpStream> {
    let mut delay = Duration::from_millis(1);
    for attempt in 0..8 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(_) if attempt < 7 => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other("connect retries exhausted"))
}

fn read_available(conn: &mut LoadConn) -> io::Result<()> {
    loop {
        let old = conn.rbuf.len();
        conn.rbuf.resize(old + 64 * 1024, 0);
        match conn.stream.read(&mut conn.rbuf[old..]) {
            Ok(0) => {
                conn.rbuf.truncate(old);
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed a load connection",
                ));
            }
            Ok(n) => conn.rbuf.truncate(old + n),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.rbuf.truncate(old);
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => conn.rbuf.truncate(old),
            Err(e) => {
                conn.rbuf.truncate(old);
                return Err(e);
            }
        }
    }
}

fn update_interests(poller: &mut Poller, conns: &mut [LoadConn]) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    for (i, conn) in conns.iter_mut().enumerate() {
        let want = Interest {
            readable: true,
            writable: conn.wpos < conn.wbuf.len(),
        };
        if want.writable != conn.interest.writable {
            poller.modify(conn.stream.as_raw_fd(), i as u64, want)?;
            conn.interest = want;
        }
    }
    Ok(())
}
