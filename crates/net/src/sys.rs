//! Minimal OS polling layer: `epoll` on Linux with a portable `poll`
//! fallback, a pipe-based [`Waker`], and an `RLIMIT_NOFILE` helper.
//!
//! The build environment has no crates.io access, so instead of the `libc`
//! crate this module declares the handful of POSIX symbols it needs as raw
//! `extern "C"` functions. Every call site is `unsafe` and carries an
//! `// audit: unsafe ok` justification; the crate root is `#![deny(unsafe_code)]`
//! with this module as the only carve-out (mirroring `sec-gf`'s SIMD
//! kernels), and `sec-audit` inventories each site.
//!
//! The reactor backend is chosen once per [`Poller`]: `epoll` on Linux
//! unless `SEC_NET_REACTOR=poll` forces the fallback (any other platform
//! always uses `poll`).

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or peer-closed / errored, which must be surfaced to a
    /// reader so it observes the EOF/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// Readiness interest for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read-and-write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Write-only interest (reading paused by backpressure).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

// POSIX/Linux symbols. Signatures match the x86-64 and aarch64 SysV ABIs;
// `fcntl`'s vararg is declared with its only shape used here (an int flag
// argument), which is ABI-compatible on those targets.
extern "C" {
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
}

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x4;

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;

#[cfg(target_os = "linux")]
const EPOLLIN: u32 = 0x1;
#[cfg(target_os = "linux")]
const EPOLLOUT: u32 = 0x4;
#[cfg(target_os = "linux")]
const EPOLLERR: u32 = 0x8;
#[cfg(target_os = "linux")]
const EPOLLHUP: u32 = 0x10;
#[cfg(target_os = "linux")]
const EPOLLRDHUP: u32 = 0x2000;
#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: i32 = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: i32 = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: i32 = 3;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: i32 = 0x80000;

const RLIMIT_NOFILE: i32 = 7;

/// `struct epoll_event`. Packed on x86-64 (the kernel ABI), aligned
/// elsewhere.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(all(target_os = "linux", not(target_arch = "x86_64")))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

/// `struct rlimit`.
#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

/// Sets `O_NONBLOCK` on a raw descriptor (used for the waker pipe; sockets
/// go through `std`'s `set_nonblocking`).
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // audit: unsafe ok — fcntl on a descriptor we own; F_GETFL takes no argument
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(last_os_error());
    }
    // audit: unsafe ok — fcntl F_SETFL with an int flag argument on an owned descriptor
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

/// The process's `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // audit: unsafe ok — getrlimit writes into a properly sized local struct
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(last_os_error());
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Best-effort raise of the file-descriptor soft limit toward `target`
/// (privileged processes may raise the hard limit too). Returns the soft
/// limit in effect afterwards; never fails — a denied raise just leaves the
/// old limit, which the caller must cap its connection count to.
pub fn raise_nofile(target: u64) -> u64 {
    let Ok((soft, hard)) = nofile_limit() else {
        return 1024;
    };
    if soft >= target {
        return soft;
    }
    // Try within the hard limit first, then (for root) beyond it.
    for wanted in [target.min(hard), target] {
        if wanted <= soft {
            continue;
        }
        let lim = Rlimit {
            rlim_cur: wanted,
            rlim_max: hard.max(wanted),
        };
        // audit: unsafe ok — setrlimit reads a properly initialized local struct
        if unsafe { setrlimit(RLIMIT_NOFILE, &lim) } == 0 {
            return nofile_limit().map_or(wanted, |(s, _)| s);
        }
    }
    nofile_limit().map_or(soft, |(s, _)| s)
}

/// A cross-thread wake-up channel for a [`Poller`]: one byte written to a
/// nonblocking pipe whose read end is registered with the reactor.
#[derive(Debug)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates the pipe with both ends nonblocking.
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        // audit: unsafe ok — pipe writes two descriptors into a 2-element array
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(last_os_error());
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        Ok(waker)
    }

    /// The read end, for registration with a [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the owning reactor. A full pipe means a wake-up is already
    /// pending, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = [1u8];
        // audit: unsafe ok — write of one byte from a live stack buffer to an owned fd
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Drains pending wake-up bytes (called by the reactor thread when the
    /// read end polls readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // audit: unsafe ok — read into a live stack buffer of the stated length
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // audit: unsafe ok — closing descriptors this Waker exclusively owns
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// The pipe ends are plain descriptors; writes from any thread are atomic at
// this size.
// audit: unsafe ok — Waker holds two owned fds; write(2)/read(2) on them are thread-safe
unsafe impl Send for Waker {}
// audit: unsafe ok — wake() and drain() only issue thread-safe syscalls on owned fds
unsafe impl Sync for Waker {}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
    },
    Poll {
        registered: Vec<(RawFd, u64, Interest)>,
    },
}

/// A readiness reactor over one set of registered descriptors.
///
/// Level-triggered on both backends: a descriptor keeps reporting ready
/// until the condition is consumed, so a handler that processes only part
/// of its input is woken again.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a reactor on the default backend for the platform
    /// (`SEC_NET_REACTOR=poll` forces the portable fallback).
    pub fn new() -> io::Result<Self> {
        let force_poll = std::env::var("SEC_NET_REACTOR").is_ok_and(|v| v == "poll");
        Self::with_backend(force_poll)
    }

    #[cfg(target_os = "linux")]
    fn with_backend(force_poll: bool) -> io::Result<Self> {
        if force_poll {
            return Ok(Poller {
                backend: Backend::Poll {
                    registered: Vec::new(),
                },
            });
        }
        // audit: unsafe ok — epoll_create1 takes only a flags word
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        Ok(Poller {
            backend: Backend::Epoll { epfd },
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn with_backend(_force_poll: bool) -> io::Result<Self> {
        Ok(Poller {
            backend: Backend::Poll {
                registered: Vec::new(),
            },
        })
    }

    /// The active backend name, surfaced in logs and bench output.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
            Backend::Poll { .. } => "poll",
        }
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_update(*epfd, EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll { registered } => {
                registered.retain(|&(f, _, _)| f != fd);
                registered.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_update(*epfd, EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll { registered } => {
                for entry in registered.iter_mut() {
                    if entry.0 == fd {
                        *entry = (fd, token, interest);
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Removes a descriptor from the interest set. Must be called *before*
    /// the descriptor is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                // audit: unsafe ok — epoll_ctl DEL with a valid epfd and a live event struct
                if unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                    return Err(last_os_error());
                }
                Ok(())
            }
            Backend::Poll { registered } => {
                registered.retain(|&(f, _, _)| f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready or
    /// `timeout_ms` elapses (`-1` blocks indefinitely), appending readiness
    /// into `events` (cleared first). `EINTR` reports as zero events.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                const MAX_EVENTS: usize = 256;
                let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
                // audit: unsafe ok — epoll_wait fills at most MAX_EVENTS entries of a live array
                let n = unsafe { epoll_wait(*epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
                if n < 0 {
                    let err = last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for ev in raw.iter().take(n as usize) {
                    let bits = ev.events;
                    events.push(Event {
                        token: ev.data,
                        readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                        writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { registered } => {
                let mut fds: Vec<PollFd> = registered
                    .iter()
                    .map(|&(fd, _, interest)| PollFd {
                        fd,
                        events: (if interest.readable { POLLIN } else { 0 })
                            | (if interest.writable { POLLOUT } else { 0 }),
                        revents: 0,
                    })
                    .collect();
                // audit: unsafe ok — poll reads/writes exactly fds.len() pollfd entries of a live Vec
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let err = last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (pfd, &(_, token, _)) in fds.iter().zip(registered.iter()) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            // audit: unsafe ok — closing the epoll descriptor this Poller exclusively owns
            unsafe {
                close(epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_update(epfd: RawFd, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
    let mut ev = EpollEvent {
        events: (if interest.readable {
            EPOLLIN | EPOLLRDHUP
        } else {
            0
        }) | (if interest.writable { EPOLLOUT } else { 0 }),
        data: token,
    };
    // audit: unsafe ok — epoll_ctl with a valid epfd and a live, initialized event struct
    if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
        return Err(last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn poller_pair() -> Vec<Poller> {
        let mut out = vec![Poller::with_backend(true).unwrap()];
        if cfg!(target_os = "linux") {
            out.push(Poller::with_backend(false).unwrap());
        }
        out
    }

    #[test]
    fn waker_wakes_and_drains() {
        for mut poller in poller_pair() {
            let waker = Waker::new().unwrap();
            poller.register(waker.read_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing pending: a zero timeout returns no events.
            poller.wait(&mut events, 0).unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
            waker.wake();
            waker.wake();
            poller.wait(&mut events, 1000).unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            waker.drain();
            poller.wait(&mut events, 0).unwrap();
            assert!(events.is_empty());
        }
    }

    #[test]
    fn socket_readability_and_deregister() {
        for mut poller in poller_pair() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (mut served, _) = listener.accept().unwrap();
            served.set_nonblocking(true).unwrap();
            let fd = served.as_raw_fd();
            poller.register(fd, 42, Interest::READ).unwrap();
            client.write_all(b"hello").unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, 2000).unwrap();
            assert!(events.iter().any(|e| e.token == 42 && e.readable));
            let mut buf = [0u8; 16];
            let n = served.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"hello");
            poller.deregister(fd).unwrap();
            client.write_all(b"more").unwrap();
            poller.wait(&mut events, 50).unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
        }
    }

    #[test]
    fn write_interest_reported() {
        for mut poller in poller_pair() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            client.set_nonblocking(true).unwrap();
            let fd = client.as_raw_fd();
            poller.register(fd, 9, Interest::READ_WRITE).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, 2000).unwrap();
            assert!(events.iter().any(|e| e.token == 9 && e.writable));
            // Dropping write interest stops the readiness storm.
            poller.modify(fd, 9, Interest::READ).unwrap();
            poller.wait(&mut events, 50).unwrap();
            assert!(!events.iter().any(|e| e.token == 9 && e.writable));
        }
    }

    #[test]
    fn nofile_limit_queries() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // A no-op raise (target below the current soft limit) keeps it.
        assert_eq!(raise_nofile(1), soft);
    }
}
