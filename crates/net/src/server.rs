//! The event-loop TCP server over a [`SecCluster`].
//!
//! # Architecture
//!
//! One reactor ([`Poller`](crate::sys::Poller)) per worker thread. Worker 0
//! owns the nonblocking listener and hands accepted connections to workers
//! round-robin through per-worker inboxes (a `Mutex<Vec<TcpStream>>` plus a
//! pipe [`Waker`](crate::sys::Waker) — an SO_REUSEPORT-free accept split
//! that keeps the whole stack portable). A connection then lives entirely
//! on its worker: no cross-thread state beyond the shared `SecCluster`,
//! whose read path is `&self` by contract.
//!
//! # Pipelining and batching
//!
//! After every read the worker parses *every* complete frame in the
//! connection's input buffer. Runs of consecutive `GET`s are accumulated
//! and dispatched as one [`SecCluster::get_batch`] call — amortizing shard
//! routing and the per-engine archive-lock/snapshot work — and their
//! responses (often cache-hit `Arc` clones) are appended to the write
//! buffer in order, flushed with a single `write` per wakeup. Non-`GET`
//! commands flush the pending batch first, so responses always come back in
//! request order.
//!
//! # Backpressure
//!
//! A connection whose un-flushed write buffer exceeds
//! [`ServerConfig::high_water`] stops being read (its read interest is
//! dropped) until the buffer drains below [`ServerConfig::low_water`] — a
//! slow reader throttles itself, not the server.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, performs one final
//! nonblocking read per connection, serves every complete frame already
//! received, then flushes write buffers until empty or
//! [`ServerConfig::drain_timeout`] expires. In-flight requests are drained;
//! half-received frames are dropped.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sec_engine::{ClusterMetrics, ObjectId, SecCluster};

use crate::proto::{self, Command, Parsed};
use crate::sys::{Interest, Poller, Waker};

/// Reactor token of the worker's waker pipe.
const WAKER_TOKEN: u64 = u64::MAX;
/// Reactor token of the listener (worker 0 only).
const LISTENER_TOKEN: u64 = u64::MAX - 1;
/// GET batch flushed to the cluster at this size even mid-buffer.
const MAX_BATCH: usize = 1024;
/// Bytes per read syscall.
const READ_CHUNK: usize = 64 * 1024;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (each its own reactor). `0` means one per available
    /// core.
    pub workers: usize,
    /// Pause reading a connection once its un-flushed write buffer exceeds
    /// this many bytes.
    pub high_water: usize,
    /// Resume reading once the write buffer drains below this.
    pub low_water: usize,
    /// How long shutdown keeps flushing drained responses before closing
    /// connections that will not drain.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            high_water: 1 << 20,
            low_water: 128 << 10,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

impl ServerConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// State shared by every worker.
struct Shared {
    cluster: Arc<SecCluster>,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Accepted connections handed from worker 0 to their target worker.
    inboxes: Vec<Mutex<Vec<TcpStream>>>,
}

/// The server entry point; see the module docs for the architecture.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (port 0 picks a free port — see
    /// [`ServerHandle::local_addr`]) and starts the worker threads.
    pub fn start<A: ToSocketAddrs>(
        cluster: Arc<SecCluster>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = config.resolved_workers();
        let shared = Arc::new(Shared {
            cluster,
            config,
            shutdown: AtomicBool::new(false),
            inboxes: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let wakers: Vec<Arc<Waker>> = (0..workers)
            .map(|_| Waker::new().map(Arc::new))
            .collect::<io::Result<_>>()?;
        let mut threads = Vec::with_capacity(workers);
        for worker in 0..workers {
            let shared = Arc::clone(&shared);
            let wakers = wakers.clone();
            let listener = (worker == 0).then(|| listener.try_clone()).transpose()?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sec-net-{worker}"))
                    .spawn(move || worker_loop(worker, &shared, &wakers, listener))?,
            );
        }
        Ok(ServerHandle {
            local_addr,
            shared,
            wakers,
            threads,
        })
    }
}

/// A running server; dropping it also shuts it down (without error
/// reporting — call [`ServerHandle::shutdown`] for that).
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    wakers: Vec<Arc<Waker>>,
    threads: Vec<JoinHandle<io::Result<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.inboxes.len())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful shutdown and joins every worker: accepted-but-
    /// unserved requests are answered, write buffers are flushed (up to the
    /// drain timeout), then sockets close.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop()
    }

    fn stop(&mut self) -> io::Result<()> {
        // audit: atomic ok — Release pairs with the workers' Acquire load so
        // config/drain state written before the store is visible once a worker
        // observes shutdown after its waker fires.
        self.shared.shutdown.store(true, Ordering::Release);
        for waker in &self.wakers {
            waker.wake();
        }
        let mut first_err = None;
        for thread in self.threads.drain(..) {
            match thread.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Err(_) => {
                    first_err.get_or_insert_with(|| io::Error::other("worker thread panicked"));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            let _ = self.stop();
        }
    }
}

/// One connection's state, owned by its worker.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf`.
    wpos: usize,
    interest: Interest,
    /// Reading paused by write-buffer backpressure.
    paused: bool,
    /// Close once the write buffer drains (poisoned stream, peer EOF, or
    /// server drain).
    closing: bool,
    /// Peer closed its write half (no more requests will arrive).
    peer_closed: bool,
}

impl Conn {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

fn lock_inbox(inbox: &Mutex<Vec<TcpStream>>) -> Vec<TcpStream> {
    match inbox.lock() {
        Ok(mut guard) => std::mem::take(&mut *guard),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

fn worker_loop(
    worker: usize,
    shared: &Shared,
    wakers: &[Arc<Waker>],
    mut listener: Option<TcpListener>,
) -> io::Result<()> {
    let mut poller = Poller::new()?;
    let waker = &wakers[worker];
    poller.register(waker.read_fd(), WAKER_TOKEN, Interest::READ)?;
    if let Some(l) = &listener {
        poller.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = Vec::new();
    let mut batch: Vec<(ObjectId, usize)> = Vec::new();
    let mut rr = 0usize;
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        let timeout_ms = if draining { 20 } else { -1 };
        poller.wait(&mut events, timeout_ms)?;

        // audit: atomic ok — Acquire pairs with ServerHandle::stop's Release
        // store, ordering the flag read before the drain bookkeeping it gates.
        if !draining && shared.shutdown.load(Ordering::Acquire) {
            draining = true;
            drain_deadline = Instant::now() + shared.config.drain_timeout;
            if let Some(l) = listener.take() {
                poller.deregister(l.as_raw_fd())?;
            }
            // Serve whatever full frames already reached each socket, then
            // stop reading and flush.
            let tokens: Vec<u64> = conns.keys().copied().collect();
            for token in tokens {
                if let Some(conn) = conns.get_mut(&token) {
                    let _ = read_some(conn);
                    process_conn(&shared.cluster, conn, &mut batch);
                    conn.closing = true;
                    let _ = flush(conn);
                    finish_conn(
                        &mut poller,
                        &mut conns,
                        token,
                        shared.config.high_water,
                        shared.config.low_water,
                    );
                }
            }
        }

        for &ev in &events {
            match ev.token {
                WAKER_TOKEN => {
                    waker.drain();
                    for stream in lock_inbox(&shared.inboxes[worker]) {
                        if draining {
                            continue; // refused: shutting down
                        }
                        let _ = admit(&mut poller, &mut conns, stream);
                    }
                }
                LISTENER_TOKEN => {
                    let Some(l) = &listener else { continue };
                    loop {
                        match l.accept() {
                            Ok((stream, _)) => {
                                let target = rr % shared.inboxes.len();
                                rr = rr.wrapping_add(1);
                                if target == worker {
                                    let _ = admit(&mut poller, &mut conns, stream);
                                } else {
                                    match shared.inboxes[target].lock() {
                                        Ok(mut inbox) => inbox.push(stream),
                                        Err(poisoned) => poisoned.into_inner().push(stream),
                                    }
                                    wakers[target].wake();
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            // EMFILE and friends: drop the wakeup, retry on
                            // the next readiness report.
                            Err(_) => break,
                        }
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if ev.readable && !conn.paused && !conn.closing {
                        match read_some(conn) {
                            Ok(()) => {}
                            Err(_) => conn.closing = true,
                        }
                        process_conn(&shared.cluster, conn, &mut batch);
                    }
                    if flush(conn).is_err() {
                        conn.wbuf.clear();
                        conn.wpos = 0;
                        conn.closing = true;
                    }
                    finish_conn(
                        &mut poller,
                        &mut conns,
                        token,
                        shared.config.high_water,
                        shared.config.low_water,
                    );
                }
            }
        }

        if draining {
            if Instant::now() >= drain_deadline {
                for (_, conn) in conns.drain() {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                }
            }
            if conns.is_empty() {
                return Ok(());
            }
        }
    }
}

/// Registers a freshly accepted connection with this worker's reactor.
fn admit(poller: &mut Poller, conns: &mut HashMap<u64, Conn>, stream: TcpStream) -> io::Result<()> {
    stream.set_nonblocking(true)?;
    let _ = stream.set_nodelay(true);
    let fd = stream.as_raw_fd();
    let token = fd as u64;
    poller.register(fd, token, Interest::READ)?;
    conns.insert(
        token,
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            interest: Interest::READ,
            paused: false,
            closing: false,
            peer_closed: false,
        },
    );
    Ok(())
}

/// Reads until `WouldBlock` (level-triggered, so a short read re-arms).
fn read_some(conn: &mut Conn) -> io::Result<()> {
    loop {
        let old = conn.rbuf.len();
        conn.rbuf.resize(old + READ_CHUNK, 0);
        match conn.stream.read(&mut conn.rbuf[old..]) {
            Ok(0) => {
                conn.rbuf.truncate(old);
                conn.peer_closed = true;
                return Ok(());
            }
            Ok(n) => {
                conn.rbuf.truncate(old + n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.rbuf.truncate(old);
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                conn.rbuf.truncate(old);
            }
            Err(e) => {
                conn.rbuf.truncate(old);
                return Err(e);
            }
        }
    }
}

/// Parses every complete frame in the read buffer, batching consecutive
/// `GET`s, and appends all responses (in request order) to the write
/// buffer.
fn process_conn(cluster: &SecCluster, conn: &mut Conn, batch: &mut Vec<(ObjectId, usize)>) {
    let (consumed, poisoned) = process_frames(cluster, &conn.rbuf, &mut conn.wbuf, batch);
    if poisoned {
        conn.closing = true;
        conn.rbuf.clear();
    } else if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
}

fn process_frames(
    cluster: &SecCluster,
    rbuf: &[u8],
    wbuf: &mut Vec<u8>,
    batch: &mut Vec<(ObjectId, usize)>,
) -> (usize, bool) {
    let mut pos = 0;
    let mut poisoned = false;
    loop {
        if batch.len() >= MAX_BATCH {
            dispatch_batch(cluster, wbuf, batch);
        }
        match proto::parse_command(&rbuf[pos..]) {
            Parsed::Complete { command, consumed } => {
                match command {
                    Command::Get { object, version } => batch.push((object, version)),
                    other => {
                        dispatch_batch(cluster, wbuf, batch);
                        execute(cluster, wbuf, &other);
                    }
                }
                pos += consumed;
            }
            Parsed::Incomplete => break,
            Parsed::Malformed { reason } => {
                dispatch_batch(cluster, wbuf, batch);
                proto::write_error(wbuf, reason);
                poisoned = true;
                break;
            }
        }
    }
    dispatch_batch(cluster, wbuf, batch);
    (pos, poisoned)
}

/// Serves an accumulated run of `GET`s through the cluster's batch entry
/// point and encodes the responses in order.
fn dispatch_batch(cluster: &SecCluster, wbuf: &mut Vec<u8>, batch: &mut Vec<(ObjectId, usize)>) {
    if batch.is_empty() {
        return;
    }
    for result in cluster.get_batch(batch) {
        match result {
            Ok(retrieval) => proto::write_bulk(wbuf, &retrieval.data),
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        }
    }
    batch.clear();
}

/// Serves one non-`GET` command.
fn execute(cluster: &SecCluster, wbuf: &mut Vec<u8>, command: &Command<'_>) {
    match *command {
        Command::Ping => proto::write_simple(wbuf, "PONG"),
        Command::Get { object, version } => match cluster.get_version(object, version) {
            Ok(retrieval) => proto::write_bulk(wbuf, &retrieval.data),
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        },
        Command::Prefix { object, version } => match cluster.get_prefix(object, version) {
            Ok(prefix) => {
                proto::write_array_header(wbuf, prefix.versions.len());
                for version in &prefix.versions {
                    proto::write_bulk(wbuf, version);
                }
            }
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        },
        Command::Append { object, payload } => match cluster.append_version(object, payload) {
            Ok(id) => proto::write_int(wbuf, id.0 as u64),
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        },
        Command::Fail { shard, node } => match cluster.fail_node(shard, node) {
            Ok(()) => proto::write_simple(wbuf, "OK"),
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        },
        Command::Revive { shard, node } => match cluster.revive_node(shard, node) {
            Ok(()) => proto::write_simple(wbuf, "OK"),
            Err(e) => proto::write_error(wbuf, &e.to_string()),
        },
        Command::Metrics => {
            proto::write_bulk(wbuf, metrics_json(&cluster.metrics_snapshot()).as_bytes());
        }
    }
}

/// Flushes the write buffer until empty or `WouldBlock` — one syscall per
/// coalesced response run in the common case.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (1 << 20) {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    Ok(())
}

/// Applies backpressure, updates reactor interest, and closes the
/// connection once it owes nothing.
fn finish_conn(
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    high_water: usize,
    low_water: usize,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    let pending = conn.pending();
    if !conn.paused && pending > high_water {
        conn.paused = true;
    } else if conn.paused && pending < low_water {
        conn.paused = false;
    }
    if (conn.closing || conn.peer_closed) && pending == 0 {
        let fd = conn.stream.as_raw_fd();
        let _ = poller.deregister(fd);
        conns.remove(&token);
        return;
    }
    let want = Interest {
        readable: !conn.paused && !conn.closing && !conn.peer_closed,
        writable: pending > 0,
    };
    if want.readable != conn.interest.readable || want.writable != conn.interest.writable {
        let fd = conn.stream.as_raw_fd();
        if poller.modify(fd, token, want).is_ok() {
            conn.interest = want;
        }
    }
}

/// Cluster metrics as a small flat JSON object (hand-rolled — the workspace
/// carries no serde).
fn metrics_json(m: &ClusterMetrics) -> String {
    format!(
        concat!(
            "{{\"placement\":\"{}\",\"shards\":{},\"objects\":{},\"versions\":{},",
            "\"nodes\":{},\"live_nodes\":{},\"retrievals\":{},\"symbol_reads\":{},",
            "\"symbol_writes\":{},\"failed_reads\":{},\"repairs\":{},",
            "\"cache_hits\":{},\"cache_base_hits\":{},\"cache_misses\":{},",
            "\"deltas_applied\":{},\"checkpoints_written\":{}}}"
        ),
        m.placement,
        m.shards.len(),
        m.objects,
        m.versions,
        m.nodes,
        m.live_nodes,
        m.io.retrievals,
        m.io.symbol_reads,
        m.io.symbol_writes,
        m.io.failed_reads,
        m.io.repairs,
        m.cache.hits,
        m.cache.base_hits,
        m.cache.misses,
        m.deltas_applied,
        m.checkpoints_written,
    )
}
