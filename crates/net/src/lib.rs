//! Async TCP front-end for the SEC cluster.
//!
//! Everything below the socket was already concurrent — retrieval is
//! `&self`, [`SecCluster`](sec_engine::SecCluster) routes `ObjectId`s across
//! shards with fallible addressing — but none of it was reachable over a
//! wire. This crate adds that last layer without any external dependency:
//!
//! * [`sys`] — a minimal reactor: `epoll` on Linux (raw FFI, no `libc`
//!   crate) with a portable `poll` fallback (`SEC_NET_REACTOR=poll`), plus a
//!   pipe-based cross-thread [`Waker`](sys::Waker) and an `RLIMIT_NOFILE`
//!   helper for many-connection benchmarks.
//! * [`proto`] — the RESP-like wire protocol: an incremental, zero-copy,
//!   panic-free frame parser that tolerates frames torn at any byte
//!   boundary, and the matching request/reply encoders.
//! * [`server`] — the event-loop server: one reactor per worker thread,
//!   shared accept with round-robin handoff, per-connection read/write
//!   buffers with high/low-water backpressure, per-connection pipelining
//!   with consecutive `GET`s dispatched as one
//!   [`SecCluster::get_batch`](sec_engine::SecCluster::get_batch) call, and
//!   graceful shutdown that drains in-flight requests.
//! * [`client`] — a small blocking client speaking the same protocol, with
//!   explicit pipelining.
//! * [`load`] — a loopback load generator (closed-loop pipelining or
//!   open-loop Poisson arrivals via `sec-workload`) reporting sustained
//!   req/s and p50/p99 latency; the `server_scaling` bench series and the
//!   `sec-netload` bin are thin wrappers over it.
//!
//! See `docs/NETWORK.md` for the wire grammar and the backpressure and
//! shutdown contracts.

#![deny(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod proto;
pub mod server;
pub mod sys;

pub use client::NetClient;
pub use load::{LoadConfig, LoadReport};
pub use proto::{Command, Parsed, ParsedReply, Reply};
pub use server::{Server, ServerConfig, ServerHandle};
