//! A small blocking client for the SEC wire protocol, with explicit
//! pipelining.
//!
//! [`NetClient::pipeline`] encodes a whole slice of commands into one
//! buffer, sends it with a single `write`, and then reads exactly one reply
//! per command — the client-side half of the server's batched dispatch.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sec_engine::ObjectId;

use crate::proto::{self, Command, ParsedReply, Reply};

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    encode_buf: Vec<u8>,
}

impl NetClient {
    /// Connects (with `TCP_NODELAY`, so unpipelined request/response
    /// round-trips are not Nagle-delayed).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            rbuf: Vec::new(),
            encode_buf: Vec::new(),
        })
    }

    /// Sends one command and waits for its reply.
    pub fn call(&mut self, command: &Command<'_>) -> io::Result<Reply> {
        self.encode_buf.clear();
        proto::encode_command(command, &mut self.encode_buf);
        let buf = std::mem::take(&mut self.encode_buf);
        self.stream.write_all(&buf)?;
        self.encode_buf = buf;
        let mut replies = self.read_replies(1)?;
        replies
            .pop()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))
    }

    /// Sends every command back-to-back in one write, then reads one reply
    /// per command (in order).
    pub fn pipeline(&mut self, commands: &[Command<'_>]) -> io::Result<Vec<Reply>> {
        self.encode_buf.clear();
        for command in commands {
            proto::encode_command(command, &mut self.encode_buf);
        }
        let buf = std::mem::take(&mut self.encode_buf);
        self.stream.write_all(&buf)?;
        self.encode_buf = buf;
        self.read_replies(commands.len())
    }

    /// Reads exactly `count` replies, blocking as needed.
    pub fn read_replies(&mut self, count: usize) -> io::Result<Vec<Reply>> {
        let mut replies = Vec::with_capacity(count);
        let mut chunk = [0u8; 64 * 1024];
        while replies.len() < count {
            match proto::parse_reply(&self.rbuf) {
                ParsedReply::Complete { reply, consumed } => {
                    self.rbuf.drain(..consumed);
                    replies.push(reply);
                    continue;
                }
                ParsedReply::Malformed { reason } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, reason));
                }
                ParsedReply::Incomplete => {}
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                ));
            }
            self.rbuf.extend_from_slice(&chunk[..n]);
        }
        Ok(replies)
    }

    /// `PING`; errors if the server answers anything but `+PONG`.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Command::Ping)? {
            Reply::Simple(s) if s == "PONG" => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// `GET` — `Ok(Ok(bytes))` on success, `Ok(Err(message))` for a server
    /// `-ERR` reply.
    pub fn get(&mut self, object: ObjectId, version: usize) -> io::Result<Result<Vec<u8>, String>> {
        match self.call(&Command::Get { object, version })? {
            Reply::Bulk(data) => Ok(Ok(data)),
            Reply::Error(message) => Ok(Err(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// `PREFIX` — the first `version` versions in order.
    pub fn prefix(
        &mut self,
        object: ObjectId,
        version: usize,
    ) -> io::Result<Result<Vec<Vec<u8>>, String>> {
        match self.call(&Command::Prefix { object, version })? {
            Reply::Array(items) => Ok(Ok(items)),
            Reply::Error(message) => Ok(Err(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// `APPEND` — the new 1-based version number.
    pub fn append(&mut self, object: ObjectId, payload: &[u8]) -> io::Result<Result<u64, String>> {
        match self.call(&Command::Append { object, payload })? {
            Reply::Int(version) => Ok(Ok(version)),
            Reply::Error(message) => Ok(Err(message)),
            other => Err(unexpected(&other)),
        }
    }

    /// `FAIL`.
    pub fn fail(&mut self, shard: usize, node: usize) -> io::Result<Result<(), String>> {
        self.ok_command(&Command::Fail { shard, node })
    }

    /// `REVIVE`.
    pub fn revive(&mut self, shard: usize, node: usize) -> io::Result<Result<(), String>> {
        self.ok_command(&Command::Revive { shard, node })
    }

    /// `METRICS` — the raw JSON bulk.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Command::Metrics)? {
            Reply::Bulk(data) => String::from_utf8(data)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "metrics not UTF-8")),
            other => Err(unexpected(&other)),
        }
    }

    fn ok_command(&mut self, command: &Command<'_>) -> io::Result<Result<(), String>> {
        match self.call(command)? {
            Reply::Simple(s) if s == "OK" => Ok(Ok(())),
            Reply::Error(message) => Ok(Err(message)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply shape: {reply:?}"),
    )
}
