//! # sec — Sparsity Exploiting Erasure Coding for versioned storage
//!
//! A reproduction of *"Sparsity Exploiting Erasure Coding for Resilient
//! Storage and Efficient I/O Access in Delta based Versioning Systems"*
//! (Harshan, Oggier, Datta — ICDCS 2015) as a production-quality Rust
//! workspace. This facade crate re-exports the public API of every
//! subsystem:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`gf`] | `sec-gf` | finite fields `GF(2^w)`, polynomials, bulk kernels |
//! | [`linalg`] | `sec-linalg` | matrices, Gaussian elimination, Cauchy/Vandermonde, criteria checks |
//! | [`erasure`] | `sec-erasure` | systematic / non-systematic Cauchy MDS codes, sparse recovery, read planning |
//! | [`versioning`] | `sec-versioning` | delta archives, Basic/Optimized/Reversed SEC, I/O model |
//! | [`store`] | `sec-store` | simulated distributed storage, placement, failures, repair |
//! | [`engine`] | `sec-engine` | concurrent serving layer: sharded locks, lock-free planning, delta cache |
//! | [`analysis`] | `sec-analysis` | static resilience, availability, average-I/O, expected-I/O |
//! | [`workload`] | `sec-workload` | sparsity PMFs and synthetic edit traces |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```rust
//! use sec::{ArchiveConfig, EncodingStrategy, GeneratorForm, VersionedArchive};
//! use sec::gf::{GaloisField, Gf1024};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A (6, 3) non-systematic SEC archive, as in the paper's running example.
//! let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
//! let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config)?;
//!
//! let v1: Vec<Gf1024> = [3u64, 1, 4].iter().map(|&v| Gf1024::from_u64(v)).collect();
//! let mut v2 = v1.clone();
//! v2[1] = Gf1024::from_u64(59);
//! archive.append_all(&[v1, v2.clone()])?;
//!
//! let both = archive.retrieve_prefix(2)?;
//! assert_eq!(both.io_reads, 5); // k + 2γ = 3 + 2, instead of 2k = 6
//! assert_eq!(both.versions[1], v2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]
#![warn(missing_docs)]

pub use sec_analysis as analysis;
pub use sec_engine as engine;
pub use sec_erasure as erasure;
pub use sec_gf as gf;
pub use sec_linalg as linalg;
pub use sec_store as store;
pub use sec_versioning as versioning;
pub use sec_workload as workload;

pub use sec_engine::{ObjectId, SecCluster, SecEngine};
pub use sec_erasure::{ByteCodec, ByteShards, CodeParams, DecodeScratch, GeneratorForm, SecCode};
pub use sec_store::{ByteDistributedStore, DistributedStore, Placement, PlacementStrategy};
pub use sec_versioning::{
    ArchiveConfig, ByteVersionedArchive, CheckpointPolicy, DeltaCache, EncodingStrategy, IoModel,
    VersionedArchive,
};
pub use sec_workload::{SparsityPmf, ZipfPmf};
