//! A Wikipedia-article style workload: revisions whose size is driven by a
//! sparsity distribution (most edits are tiny, a few rewrite large parts of
//! the article). The example compares the expected I/O of SEC against the
//! non-differential baseline under the paper's truncated Exponential and
//! Poisson models, and validates the prediction against a generated trace.
//!
//! Run with `cargo run --example wiki_history`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sec::analysis::expected_io::{expected_joint_reads, joint_read_reduction_percent};
use sec::gf::Gf256;
use sec::workload::{EditModel, TraceConfig, VersionTrace};
use sec::{ArchiveConfig, EncodingStrategy, GeneratorForm, IoModel, SparsityPmf, VersionedArchive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 8usize;
    let n = 16usize;
    let model = IoModel::new(sec::CodeParams::new(n, k)?, GeneratorForm::NonSystematic);

    println!("expected I/O for two versions of an {k}-symbol article, ({n},{k}) code:\n");
    println!(
        "{:<34} {:>16} {:>14}",
        "sparsity model", "expected reads", "reduction %"
    );
    for &alpha in &[0.2, 0.8, 1.6] {
        let pmf = SparsityPmf::truncated_exponential(alpha, k)?;
        println!(
            "{:<34} {:>16.3} {:>13.1}%",
            format!("small edits (exponential α={alpha})"),
            expected_joint_reads(&model, &pmf),
            joint_read_reduction_percent(&model, &pmf)
        );
    }
    for &lambda in &[3.0, 6.0, 9.0] {
        let pmf = SparsityPmf::truncated_poisson(lambda, k)?;
        println!(
            "{:<34} {:>16.3} {:>13.1}%",
            format!("large edits (poisson λ={lambda})"),
            expected_joint_reads(&model, &pmf),
            joint_read_reduction_percent(&model, &pmf)
        );
    }

    // Validate the analytical expectation against an actual archived trace.
    let pmf = SparsityPmf::truncated_exponential(0.8, k)?;
    let mut rng = StdRng::seed_from_u64(42);
    let trace_config = TraceConfig::new(k, 60, EditModel::PmfDriven(pmf));
    let trace: VersionTrace<Gf256> = VersionTrace::generate(&trace_config, &mut rng);

    let config = ArchiveConfig::new(n, k, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
    let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config)?;
    archive.append_all(&trace.versions)?;

    let measured = archive.retrieve_prefix(archive.len())?.io_reads;
    let baseline = archive.len() * k;
    println!(
        "\n60-revision trace: measured {measured} reads for the full history vs {baseline} baseline \
         ({:.1}% fewer); empirical sparsity PMF: {}",
        (baseline - measured) as f64 / baseline as f64 * 100.0,
        trace.empirical_pmf().expect("trace has more than one version")
    );
    Ok(())
}
