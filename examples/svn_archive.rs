//! A source-repository style workload: a document receives many small,
//! localized edits (the SVN scenario from the paper's introduction). The
//! example generates a synthetic edit trace, archives it with every encoding
//! strategy, stores it on a simulated colocated cluster, injects failures and
//! compares I/O and availability.
//!
//! Run with `cargo run --example svn_archive`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sec::gf::Gf256;
use sec::workload::{EditModel, TraceConfig, VersionTrace};
use sec::{ArchiveConfig, DistributedStore, EncodingStrategy, GeneratorForm, VersionedArchive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2015);
    // 16-symbol object, 12 revisions, each revision rewrites a short run of
    // up to 3 consecutive symbols (a typical code-edit pattern).
    let trace_config = TraceConfig::new(16, 12, EditModel::Localized { max_run: 3 });
    let trace: VersionTrace<Gf256> = VersionTrace::generate(&trace_config, &mut rng);
    println!(
        "generated {} revisions; delta sparsity: {:?} ({}% exploitable)",
        trace.len(),
        trace.sparsity,
        (trace.exploitable_fraction() * 100.0) as u32
    );

    // Archive the history under each strategy with a (32, 16) rate-1/2 code.
    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        let config = ArchiveConfig::new(32, 16, GeneratorForm::Systematic, strategy)?;
        let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config)?;
        archive.append_all(&trace.versions)?;

        let whole = archive.retrieve_prefix(archive.len())?;
        let latest = archive.retrieve_version(archive.len())?;
        println!(
            "{strategy:<18} whole-history reads = {:>4}   latest-version reads = {:>3}",
            whole.io_reads, latest.io_reads
        );
    }

    // Put the Basic SEC archive on a simulated cluster, kill a few nodes and
    // show that everything is still readable with the same I/O counts.
    let config = ArchiveConfig::new(32, 16, GeneratorForm::Systematic, EncodingStrategy::BasicSec)?;
    let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config)?;
    archive.append_all(&trace.versions)?;
    let mut store = DistributedStore::colocated(&archive);
    for node in [0, 7, 13, 21, 30] {
        store.fail_node(node).unwrap();
    }
    println!(
        "\nafter 5 node failures the archive is {}recoverable",
        if store.archive_recoverable(&archive) {
            ""
        } else {
            "NOT "
        }
    );
    let recovered = store.retrieve_version(&archive, archive.len())?;
    assert_eq!(&recovered.data, trace.versions.last().expect("non-empty trace"));
    println!(
        "latest revision recovered from the degraded cluster with {} reads ({})",
        recovered.io_reads,
        store.metrics()
    );

    // Repair one of the failed nodes and report the rebuild cost.
    let rebuilt = store.repair_node(&archive, 7)?;
    println!("repaired node 7: {rebuilt} symbols rebuilt");
    Ok(())
}
