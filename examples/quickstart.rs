//! Quickstart: archive a few versions of an object with SEC and read them
//! back, printing the I/O savings over the non-differential baseline.
//!
//! Run with `cargo run --example quickstart`.

use sec::gf::{GaloisField, Gf1024};
use sec::{ArchiveConfig, EncodingStrategy, GeneratorForm, VersionedArchive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A (6, 3) code over GF(1024): the paper's running example. Each object is
    // three symbols; the code spreads six coded symbols over six nodes and
    // tolerates any three failures.
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)?;
    let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config)?;

    // Three versions of a small object; each edit touches a single symbol, so
    // every delta is 1-sparse and exploitable by SEC.
    let v1: Vec<Gf1024> = [100u64, 200, 300].iter().map(|&v| Gf1024::from_u64(v)).collect();
    let mut v2 = v1.clone();
    v2[0] = Gf1024::from_u64(111);
    let mut v3 = v2.clone();
    v3[2] = Gf1024::from_u64(333);

    archive.append_all(&[v1.clone(), v2.clone(), v3.clone()])?;
    println!(
        "archived {} versions, sparsity profile {:?}",
        archive.len(),
        archive.sparsity_profile()
    );

    // Retrieve each version and the whole history.
    for l in 1..=3 {
        let r = archive.retrieve_version(l)?;
        println!(
            "version {l}: {} I/O reads, {} entries touched",
            r.io_reads, r.entries_read
        );
    }
    let all = archive.retrieve_prefix(3)?;
    assert_eq!(all.versions, vec![v1, v2, v3]);

    let baseline = 3 * archive.code().k();
    println!(
        "whole archive: {} I/O reads with SEC vs {} non-differential ({:.1}% fewer)",
        all.io_reads,
        baseline,
        (baseline - all.io_reads) as f64 / baseline as f64 * 100.0
    );
    Ok(())
}
