//! A capacity-planning tool: given a code shape and a target node-failure
//! probability, report the static resilience of each scheme/placement
//! combination (in "nines") and the expected retrieval I/O — the numbers an
//! operator would look at before choosing systematic vs non-systematic SEC
//! and colocated vs dispersed placement.
//!
//! Run with `cargo run --example resilience_planner -- [p]` (default p = 0.05).

use sec::analysis::availability::{colocated_availability, dispersed_availability, nines, Scheme};
use sec::analysis::io::{average_io_exact, IoScheme};
use sec::analysis::resilience::{prob_lose_full, prob_lose_sparse_exact};
use sec::gf::Gf1024;
use sec::{GeneratorForm, SecCode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let (n, k) = (10usize, 5usize);
    let sparsity = [1usize, 2, 1]; // four versions with three small deltas

    let non_systematic: SecCode<Gf1024> = SecCode::cauchy(n, k, GeneratorForm::NonSystematic)?;
    let systematic: SecCode<Gf1024> = SecCode::cauchy(n, k, GeneratorForm::Systematic)?;

    println!("resilience plan for a ({n},{k}) code, node failure probability p = {p}\n");
    println!("per-object loss probabilities:");
    println!("  fully coded version        : {:.3e}", prob_lose_full(n, k, p));
    for gamma in 1..=2usize {
        println!(
            "  {gamma}-sparse delta (non-sys/sys): {:.3e} / {:.3e}",
            prob_lose_sparse_exact(&non_systematic, gamma, p),
            prob_lose_sparse_exact(&systematic, gamma, p)
        );
    }

    println!("\nwhole-archive availability (4 versions, deltas {sparsity:?}), in nines:");
    println!(
        "  colocated placement (all schemes) : {:.2}",
        nines(colocated_availability(&non_systematic, p))
    );
    for (label, code, scheme) in [
        (
            "dispersed, non-systematic SEC",
            &non_systematic,
            Scheme::NonSystematicSec,
        ),
        ("dispersed, systematic SEC", &systematic, Scheme::SystematicSec),
        (
            "dispersed, non-differential",
            &non_systematic,
            Scheme::NonDifferential,
        ),
    ] {
        println!(
            "  {label:<34}: {:.2}",
            nines(dispersed_availability(code, scheme, &sparsity, p))
        );
    }

    println!("\naverage I/O reads to fetch a sparse delta (eq. 21):");
    for gamma in 1..=2usize {
        let ns = average_io_exact(
            &non_systematic,
            IoScheme::Sec(GeneratorForm::NonSystematic),
            gamma,
            p,
        );
        let sys = average_io_exact(&systematic, IoScheme::Sec(GeneratorForm::Systematic), gamma, p);
        let nd = average_io_exact(&non_systematic, IoScheme::NonDifferential, gamma, p);
        println!(
            "  γ = {gamma}: non-systematic {:.3}, systematic {:.3}, non-differential {:.3}",
            ns.average_reads, sys.average_reads, nd.average_reads
        );
    }

    println!("\nrecommendation: colocate all versions' pieces on one set of {n} nodes;");
    println!("use systematic SEC if decode simplicity matters, non-systematic SEC if individual");
    println!("delta resilience and uniformly cheap sparse reads matter.");
    Ok(())
}
