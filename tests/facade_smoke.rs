//! Smoke test for the `sec` facade crate: every advertised re-export must be
//! reachable through `sec::...` paths alone, and the re-exported types must
//! interoperate end-to-end (encode → store → fail → retrieve → analyze).

use sec::analysis::patterns::census;
use sec::engine::{ClusterMetrics, EngineMetrics, EngineRetrieval};
use sec::erasure::{CodeError, DecodeMethod, ReadPlan, ReadTarget, ReplicationCode, Share};
use sec::gf::{GaloisField, Gf1024, Gf16, Gf256, Gf65536, Poly};
use sec::linalg::{cauchy::cauchy_matrix, checks, Matrix, MatrixError};
use sec::store::{FailurePattern, IoMetrics, Placement, StorageNode, StoredRetrieval};
use sec::versioning::{PrefixRetrieval, VersionRetrieval, VersioningError};
use sec::workload::{EditModel, TraceConfig, VersionTrace};
use sec::{
    ArchiveConfig, CodeParams, DistributedStore, EncodingStrategy, GeneratorForm, IoModel, ObjectId,
    PlacementStrategy, SecCluster, SecCode, SecEngine, SparsityPmf, VersionedArchive,
};

/// Every crate-root re-export participates in one end-to-end flow.
#[test]
fn facade_types_interoperate_end_to_end() {
    // erasure: code construction + direct encode/decode via facade paths.
    let code: SecCode<Gf256> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("code builds");
    let params: CodeParams = code.params();
    assert_eq!((params.n, params.k), (6, 3));
    let delta = vec![Gf256::from_u64(42), Gf256::ZERO, Gf256::ZERO];
    let codeword = code.encode(&delta).expect("encode");
    let shares: Vec<Share<Gf256>> = vec![(5, codeword[5]), (2, codeword[2])];
    assert_eq!(code.decode_sparse(&shares, 1).expect("sparse decode"), delta);

    // versioning: archive two versions, check the io model agrees.
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid config");
    let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).expect("archive");
    let v1: Vec<Gf1024> = [3u64, 1, 4].iter().map(|&v| Gf1024::from_u64(v)).collect();
    let mut v2 = v1.clone();
    v2[1] = Gf1024::from_u64(59);
    archive.append_all(&[v1.clone(), v2.clone()]).expect("append");
    let prefix: PrefixRetrieval<Gf1024> = archive.retrieve_prefix(2).expect("prefix");
    assert_eq!(prefix.io_reads, 5); // k + 2γ = 3 + 2
    let model: IoModel = archive.config().io_model();
    assert_eq!(
        model.prefix_reads(EncodingStrategy::BasicSec, archive.sparsity_profile(), 2),
        prefix.io_reads
    );

    // store: colocated placement, node failures, failure-aware retrieval.
    let store: DistributedStore<Gf1024> = DistributedStore::new(&archive, PlacementStrategy::Colocated);
    store.fail_node(0).unwrap();
    let retrieved: StoredRetrieval<Gf1024> = store.retrieve_version(&archive, 2).expect("retrieve");
    assert_eq!(retrieved.data, v2);
    let metrics: IoMetrics = store.metrics();
    assert!(metrics.symbol_reads > 0);
    let placement: Placement = store.placement();
    assert_eq!(placement.strategy(), PlacementStrategy::Colocated);
    let node: &StorageNode<Gf1024> = store.node(1).expect("node 1 exists");
    assert!(node.is_alive());
    let pattern = FailurePattern::none(store.node_count());
    assert_eq!(pattern.failed_count(), 0);

    // engine: the concurrent serving layer over the same configuration.
    let engine = SecEngine::new(config).expect("engine");
    engine.append_version(&[1, 2, 3, 4, 5, 6]).expect("append v1");
    engine.append_version(&[1, 2, 9, 4, 5, 6]).expect("append v2");
    engine.fail_node(0).expect("node 0 is in range");
    assert!(
        engine.fail_node(99).is_err(),
        "bad node ids are errors, not panics"
    );
    let served: EngineRetrieval = engine.get_version(2).expect("engine retrieval");
    assert_eq!(*served.data, vec![1, 2, 9, 4, 5, 6]);
    let engine_metrics: EngineMetrics = engine.metrics_snapshot();
    assert_eq!(engine_metrics.live_nodes, 5);
    assert!(engine_metrics.io.symbol_reads > 0);

    // cluster: the sharded multi-archive router over per-object engines.
    let cluster = SecCluster::new(config, 4).expect("cluster");
    let object = ObjectId::from_name("facade/smoke");
    cluster
        .append_version(object, &[1, 2, 3, 4, 5, 6])
        .expect("cluster append");
    assert_eq!(
        *cluster.get_version(object, 1).expect("cluster read").data,
        vec![1, 2, 3, 4, 5, 6]
    );
    let shard = cluster.shard_of(object);
    cluster.fail_node(shard, 1).expect("valid address");
    assert!(cluster.fail_node(99, 0).is_err());
    let cluster_metrics: ClusterMetrics = cluster.metrics_snapshot();
    assert_eq!(cluster_metrics.objects, 1);
    assert_eq!(cluster_metrics.shards[shard].live_nodes, 5);

    // analysis: §IV-C pattern census through the facade path.
    let census_ns = census(&code, 1);
    assert_eq!(census_ns.total_patterns, 63);

    // workload: PMFs and synthetic traces.
    let pmf: SparsityPmf = SparsityPmf::truncated_exponential(0.6, 3).expect("pmf");
    assert!((pmf.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    let trace_config = TraceConfig::new(3, 4, EditModel::Localized { max_run: 2 });
    assert_eq!(trace_config.versions, 4);
    let _: fn(&TraceConfig, &mut rand::rngs::StdRng) -> VersionTrace<Gf256> = VersionTrace::generate;
}

/// Re-exported auxiliary types and the whole-module re-exports stay reachable.
#[test]
fn facade_module_reexports_are_reachable() {
    // gf: all four fields and polynomials.
    assert_eq!(Gf16::ORDER, 16);
    assert_eq!(Gf256::ORDER, 256);
    assert_eq!(Gf1024::ORDER, 1024);
    assert_eq!(Gf65536::ORDER, 65536);
    let poly = Poly::new(vec![Gf256::ONE, Gf256::ONE]);
    assert_eq!(poly.eval(Gf256::ONE), Gf256::ZERO); // 1 + x at x=1, char 2

    // linalg: Cauchy construction satisfies both SEC criteria.
    let g: Matrix<Gf256> = cauchy_matrix(6, 3).expect("cauchy");
    assert!(checks::has_invertible_k_submatrix(&g));
    let bad: Result<Matrix<Gf256>, MatrixError> = Matrix::from_vec(2, 2, vec![Gf256::ZERO]);
    assert!(bad.is_err());

    // erasure auxiliaries: baseline code, read planning vocabulary, errors.
    let replication = ReplicationCode::new(3, 4).expect("replication code");
    assert_eq!(replication.replicas(), 3);
    assert_eq!(replication.io_reads(), 4);
    let target = ReadTarget::Sparse { gamma: 1 };
    assert!(matches!(target, ReadTarget::Sparse { gamma: 1 }));
    let plan = ReadPlan {
        nodes: vec![0, 1],
        io_reads: 2,
        method: DecodeMethod::SparseRecovery,
    };
    assert_eq!(plan.io_reads, 2);
    let err: CodeError = CodeError::DataLengthMismatch {
        expected: 3,
        actual: 2,
    };
    assert!(!err.to_string().is_empty());

    // versioning auxiliaries: error and retrieval types.
    let config = ArchiveConfig::new(4, 2, GeneratorForm::Systematic, EncodingStrategy::NonDifferential)
        .expect("valid config");
    let mut archive: VersionedArchive<Gf256> = VersionedArchive::new(config).expect("archive");
    let missing: Result<VersionRetrieval<Gf256>, VersioningError> = archive.retrieve_version(1);
    assert!(missing.is_err());
    archive
        .append_version(&[Gf256::ONE, Gf256::ZERO])
        .expect("append");
    assert_eq!(archive.retrieve_version(1).expect("v1").io_reads, 2);
}
