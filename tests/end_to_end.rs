//! End-to-end integration tests spanning every crate: workload generation →
//! delta archiving → distributed storage → failures → retrieval, checked
//! against the analytical I/O and resilience models.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sec::analysis::io::{average_io_exact, IoScheme};
use sec::analysis::patterns::census;
use sec::analysis::resilience::{paper_eq20_systematic_loss, prob_lose_sparse_exact};
use sec::gf::{GaloisField, Gf1024, Gf256};
use sec::store::failure::enumerate_patterns;
use sec::workload::{EditModel, TraceConfig, VersionTrace};
use sec::{
    ArchiveConfig, DistributedStore, EncodingStrategy, GeneratorForm, PlacementStrategy, SecCode,
    SparsityPmf, VersionedArchive,
};

/// Generates a trace, archives it, stores it on a degraded cluster and checks
/// every version comes back bit-exact for every strategy and placement.
#[test]
fn trace_to_storage_round_trip_under_failures() {
    let mut rng = StdRng::seed_from_u64(99);
    let trace_config = TraceConfig::new(8, 6, EditModel::Scattered { edits: 2 });
    let trace: VersionTrace<Gf256> = VersionTrace::generate(&trace_config, &mut rng);

    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
        EncodingStrategy::NonDifferential,
    ] {
        for placement in [PlacementStrategy::Colocated, PlacementStrategy::Dispersed] {
            let config = ArchiveConfig::new(16, 8, GeneratorForm::Systematic, strategy)
                .expect("valid (16,8) configuration");
            let mut archive: VersionedArchive<Gf256> =
                VersionedArchive::new(config).expect("GF(256) supports (16,8)");
            archive.append_all(&trace.versions).expect("append succeeds");

            let store = DistributedStore::new(&archive, placement);
            // Kill n - k = 8 nodes of the first entry's node set: the archive
            // must still be fully readable (MDS tolerance).
            for node in 0..8 {
                store.fail_node(node).unwrap();
            }
            assert!(store.archive_recoverable(&archive), "{strategy} {placement}");
            for (l, expect) in trace.versions.iter().enumerate() {
                let got = store
                    .retrieve_version(&archive, l + 1)
                    .unwrap_or_else(|e| panic!("{strategy} {placement} v{}: {e}", l + 1));
                assert_eq!(&got.data, expect, "{strategy} {placement} version {}", l + 1);
            }
        }
    }
}

/// The archive's measured I/O equals the closed-form model, and SEC saves
/// reads relative to the baseline whenever deltas are exploitable.
#[test]
fn measured_io_matches_model_on_pmf_driven_trace() {
    let pmf = SparsityPmf::truncated_exponential(0.8, 10).expect("valid pmf");
    let mut rng = StdRng::seed_from_u64(3);
    let trace_config = TraceConfig::new(10, 12, EditModel::PmfDriven(pmf));
    let trace: VersionTrace<Gf1024> = VersionTrace::generate(&trace_config, &mut rng);

    let config = ArchiveConfig::new(20, 10, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid (20,10) configuration");
    let mut archive: VersionedArchive<Gf1024> =
        VersionedArchive::new(config).expect("GF(1024) supports (20,10)");
    archive.append_all(&trace.versions).expect("append succeeds");
    assert_eq!(archive.sparsity_profile(), trace.sparsity.as_slice());

    let model = archive.config().io_model();
    let measured = archive
        .retrieve_prefix(archive.len())
        .expect("retrieval succeeds");
    let predicted = model.prefix_reads(EncodingStrategy::BasicSec, &trace.sparsity, archive.len());
    assert_eq!(measured.io_reads, predicted);
    assert!(measured.io_reads <= archive.len() * 10);
}

/// The paper's §IV-C example end to end: the 3 KB object as three GF(1024)
/// symbols, a 1-sparse second version, (6,3) codes — five reads for both
/// versions, pattern census 56 vs 44, and the eq. (20) loss probability.
#[test]
fn paper_running_example_end_to_end() {
    let x1: Vec<Gf1024> = [513u64, 7, 1000].iter().map(|&v| Gf1024::from_u64(v)).collect();
    let mut x2 = x1.clone();
    x2[0] = Gf1024::from_u64(12); // modify only the first "1 KB block"

    for form in [GeneratorForm::Systematic, GeneratorForm::NonSystematic] {
        let config = ArchiveConfig::new(6, 3, form, EncodingStrategy::BasicSec).expect("valid (6,3)");
        let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).expect("builds");
        archive
            .append_all(&[x1.clone(), x2.clone()])
            .expect("append succeeds");
        let both = archive.retrieve_prefix(2).expect("retrieval succeeds");
        assert_eq!(both.io_reads, 5, "{form:?}");
        assert_eq!(both.versions, vec![x1.clone(), x2.clone()]);
    }

    let ns: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("builds");
    let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("builds");
    assert_eq!(census(&ns, 1).recoverable(), 56);
    assert_eq!(census(&sys, 1).recoverable(), 44);
    for &p in &[0.05, 0.1, 0.2] {
        assert!((prob_lose_sparse_exact(&sys, 1, p) - paper_eq20_systematic_loss(p)).abs() < 1e-12);
    }
}

/// The storage simulator agrees with the analytical availability model: over
/// every failure pattern of the colocated (6,3) cluster, the archive is
/// recoverable exactly when at least k nodes are alive.
#[test]
fn simulator_agrees_with_analytical_availability() {
    let x1: Vec<Gf1024> = [1u64, 2, 3].iter().map(|&v| Gf1024::from_u64(v)).collect();
    let mut x2 = x1.clone();
    x2[1] = Gf1024::from_u64(9);
    let config = ArchiveConfig::new(6, 3, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec)
        .expect("valid (6,3)");
    let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).expect("builds");
    archive
        .append_all(&[x1.clone(), x2.clone()])
        .expect("append succeeds");

    let mut recoverable_patterns = 0usize;
    for pattern in enumerate_patterns(6) {
        let store = DistributedStore::colocated(&archive);
        store.apply_pattern(&pattern);
        let recoverable = store.archive_recoverable(&archive);
        assert_eq!(
            recoverable,
            pattern.live_count() >= 3,
            "pattern {:?}",
            pattern.failed_nodes()
        );
        if recoverable {
            recoverable_patterns += 1;
            // And retrieval really works when the model says it should.
            let r = store.retrieve_version(&archive, 2).expect("retrievable pattern");
            assert_eq!(r.data, x2);
        }
    }
    // C(6,3) + C(6,2) + C(6,1) + C(6,0) patterns with >= 3 live nodes.
    assert_eq!(recoverable_patterns, 20 + 15 + 6 + 1);
}

/// Degraded-mode reads: with failures present, sparse deltas are still read
/// with 2γ I/Os whenever the live set allows it, matching the average-I/O
/// analysis used for Figs. 4–5.
#[test]
fn degraded_reads_match_average_io_analysis() {
    let sys: SecCode<Gf1024> = SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("builds");
    // All parity nodes alive → 2 reads; parity pair broken → k reads.
    let avg_low_p = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, 0.01);
    let avg_high_p = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, 0.2);
    assert!(avg_low_p.average_reads < avg_high_p.average_reads);

    let x1: Vec<Gf1024> = [5u64, 6, 7].iter().map(|&v| Gf1024::from_u64(v)).collect();
    let mut x2 = x1.clone();
    x2[2] = Gf1024::from_u64(700);
    let config = ArchiveConfig::new(6, 3, GeneratorForm::Systematic, EncodingStrategy::BasicSec)
        .expect("valid (6,3)");
    let mut archive: VersionedArchive<Gf1024> = VersionedArchive::new(config).expect("builds");
    archive.append_all(&[x1, x2.clone()]).expect("append succeeds");

    // Fail two of the three parity nodes: the delta can no longer be fetched
    // with 2 reads from the parity block, yet retrieval still succeeds.
    let store = DistributedStore::colocated(&archive);
    store.fail_node(4).unwrap();
    store.fail_node(5).unwrap();
    let r = store.retrieve_version(&archive, 2).expect("still recoverable");
    assert_eq!(r.data, x2);
    assert!(r.io_reads >= 5, "reads = {}", r.io_reads);
}
