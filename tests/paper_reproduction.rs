//! Integration tests that pin every headline number of the paper's evaluation
//! so regressions in any crate are caught at the workspace level.

use sec::analysis::availability::{colocated_availability, dispersed_availability, Scheme};
use sec::analysis::expected_io::{joint_read_reduction_percent, second_version_increase_percent};
use sec::analysis::io::{average_io_exact, IoScheme};
use sec::analysis::resilience::{
    paper_eq17_full_loss, paper_eq18_non_systematic_loss, prob_lose_full, prob_lose_sparse_exact,
};
use sec::analysis::tables::table1;
use sec::erasure::CriteriaReport;
use sec::gf::Gf1024;
use sec::{CodeParams, EncodingStrategy, GeneratorForm, IoModel, SecCode, SparsityPmf};

fn codes_6_3() -> (SecCode<Gf1024>, SecCode<Gf1024>) {
    (
        SecCode::cauchy(6, 3, GeneratorForm::NonSystematic).expect("builds"),
        SecCode::cauchy(6, 3, GeneratorForm::Systematic).expect("builds"),
    )
}

#[test]
fn table1_io_read_rows() {
    let columns = table1(CodeParams::new(6, 3).expect("valid"), 1);
    assert_eq!(
        columns.iter().map(|c| c.io_reads_v1).collect::<Vec<_>>(),
        vec![3, 3, 3]
    );
    assert_eq!(
        columns.iter().map(|c| c.io_reads_v2).collect::<Vec<_>>(),
        vec![2, 2, 3]
    );
}

#[test]
fn fig2_loss_probability_ordering_and_closed_forms() {
    let (ns, sys) = codes_6_3();
    for &p in &[0.02, 0.06, 0.1, 0.14, 0.18, 0.2] {
        let loss_ns = prob_lose_sparse_exact(&ns, 1, p);
        let loss_sys = prob_lose_sparse_exact(&sys, 1, p);
        assert!((loss_ns - paper_eq18_non_systematic_loss(p)).abs() < 1e-12);
        assert!(loss_sys > loss_ns, "p={p}");
        assert!(loss_sys < paper_eq17_full_loss(p), "p={p}");
    }
}

#[test]
fn fig3_placement_and_scheme_ordering() {
    let (ns, sys) = codes_6_3();
    for &p in &[0.02, 0.1, 0.2] {
        let colo = colocated_availability(&ns, p);
        let d_ns = dispersed_availability(&ns, Scheme::NonSystematicSec, &[1], p);
        let d_sys = dispersed_availability(&sys, Scheme::SystematicSec, &[1], p);
        let d_nd = dispersed_availability(&ns, Scheme::NonDifferential, &[1], p);
        assert!(colo >= d_ns && d_ns >= d_sys && d_sys >= d_nd, "p={p}");
        assert!((colo - (1.0 - prob_lose_full(6, 3, p))).abs() < 1e-12);
    }
}

#[test]
fn fig4_and_fig5_average_io_curves() {
    let (ns, sys) = codes_6_3();
    // (6,3), gamma = 1.
    for &p in &[0.01, 0.1, 0.2] {
        assert!(
            (average_io_exact(&ns, IoScheme::Sec(GeneratorForm::NonSystematic), 1, p).average_reads
                - 2.0)
                .abs()
                < 1e-12
        );
        assert!(
            (average_io_exact(&ns, IoScheme::NonDifferential, 1, p).average_reads - 3.0).abs() < 1e-12
        );
        let s = average_io_exact(&sys, IoScheme::Sec(GeneratorForm::Systematic), 1, p).average_reads;
        assert!((2.0..=3.0).contains(&s));
    }
    // (10,5), gamma = 1 and 2: systematic stays close to 2γ for γ=1 up to p=0.2.
    let sys10: SecCode<Gf1024> = SecCode::cauchy(10, 5, GeneratorForm::Systematic).expect("builds");
    let g1 = average_io_exact(&sys10, IoScheme::Sec(GeneratorForm::Systematic), 1, 0.2).average_reads;
    let g2 = average_io_exact(&sys10, IoScheme::Sec(GeneratorForm::Systematic), 2, 0.2).average_reads;
    assert!(g1 < 2.1, "gamma=1 average {g1}");
    assert!((4.0..5.0).contains(&g2), "gamma=2 average {g2}");
}

#[test]
fn fig6_and_fig7_expected_io_bands() {
    let model = IoModel::new(
        CodeParams::new(6, 3).expect("valid"),
        GeneratorForm::NonSystematic,
    );
    // Paper: 6–13/14% reduction for the exponential family, 0.5–4.5% for Poisson.
    let reductions: Vec<f64> = [0.1, 0.6, 1.1, 1.6]
        .iter()
        .map(|&a| {
            joint_read_reduction_percent(&model, &SparsityPmf::truncated_exponential(a, 3).expect("pmf"))
        })
        .collect();
    assert!(reductions.windows(2).all(|w| w[0] < w[1]));
    assert!(reductions[0] > 4.0 && reductions[0] < 8.0);
    assert!(reductions[3] > 12.0 && reductions[3] < 15.0);

    let poisson: Vec<f64> = [3.0, 5.0, 7.0, 9.0]
        .iter()
        .map(|&l| {
            joint_read_reduction_percent(&model, &SparsityPmf::truncated_poisson(l, 3).expect("pmf"))
        })
        .collect();
    assert!(poisson.windows(2).all(|w| w[0] > w[1]));
    assert!(poisson[0] < 5.0 && poisson[3] > 0.0 && poisson[3] < 1.5);
}

#[test]
fn fig8_optimized_vs_basic_increase() {
    let model = IoModel::new(
        CodeParams::new(6, 3).expect("valid"),
        GeneratorForm::NonSystematic,
    );
    for &alpha in &[0.1, 0.6, 1.1, 1.6] {
        let pmf = SparsityPmf::truncated_exponential(alpha, 3).expect("pmf");
        let basic = second_version_increase_percent(&model, EncodingStrategy::BasicSec, &pmf);
        let optimized = second_version_increase_percent(&model, EncodingStrategy::OptimizedSec, &pmf);
        // Paper Fig. 8 (left): both in the 20–90% band, optimized below basic.
        assert!(basic > 20.0 && basic < 95.0, "alpha={alpha} basic={basic}");
        assert!(optimized <= basic);
        assert!(optimized >= 0.0);
    }
}

#[test]
fn fig9_io_read_series() {
    let model = IoModel::new(
        CodeParams::new(20, 10).expect("valid"),
        GeneratorForm::NonSystematic,
    );
    let profile = [3usize, 8, 3, 6];
    let basic: Vec<usize> = (1..=5)
        .map(|l| model.version_reads(EncodingStrategy::BasicSec, &profile, l))
        .collect();
    let optimized: Vec<usize> = (1..=5)
        .map(|l| model.version_reads(EncodingStrategy::OptimizedSec, &profile, l))
        .collect();
    let prefix_nd: Vec<usize> = (1..=5)
        .map(|l| model.prefix_reads(EncodingStrategy::NonDifferential, &profile, l))
        .collect();
    assert_eq!(basic, vec![10, 16, 26, 32, 42]);
    assert_eq!(optimized, vec![10, 16, 10, 16, 10]);
    assert_eq!(prefix_nd, vec![10, 20, 30, 40, 50]);
}

#[test]
fn section_v_a_subset_counts() {
    let (ns, sys) = codes_6_3();
    assert_eq!(
        CriteriaReport::for_code(&ns)
            .gamma(1)
            .expect("γ=1")
            .qualifying_subsets,
        15
    );
    assert_eq!(
        CriteriaReport::for_code(&sys)
            .gamma(1)
            .expect("γ=1")
            .qualifying_subsets,
        3
    );
}
