//! End-to-end byte-shard round trip under every survivable failure pattern.
//!
//! Archives 8 versions of a byte object under Basic, Optimized and Reversed
//! SEC with byte shards, injects every failure pattern of at most `n − k`
//! nodes into a colocated [`ByteDistributedStore`], and asserts that
//!
//! 1. every version retrieves byte-intact, and
//! 2. the store's reported block reads equal exactly what
//!    [`plan_read`](sec::erasure::read_plan::plan_read) predicts for the
//!    touched entries given the live-node set.

use sec::erasure::read_plan::{plan_read, ReadTarget};
use sec::store::failure::enumerate_patterns;
use sec::versioning::StoredPayload;
use sec::{ArchiveConfig, ByteDistributedStore, ByteVersionedArchive, EncodingStrategy, GeneratorForm};

const N: usize = 6;
const K: usize = 3;
const BLOCK: usize = 16;
const VERSIONS: usize = 8;

/// Eight versions of a 48-byte object (three 16-byte blocks) with a sparsity
/// profile that mixes empty, exploitable and dense deltas:
/// γ = [1, 0, 2, 1, 3, 1, 2].
fn versions() -> Vec<Vec<u8>> {
    let v1: Vec<u8> = (0..K * BLOCK).map(|i| (i * 29 + 17) as u8).collect();
    let edit_blocks: [&[usize]; VERSIONS - 1] = [
        &[1],       // γ2 = 1
        &[],        // γ3 = 0 (identical version)
        &[0, 2],    // γ4 = 2
        &[2],       // γ5 = 1
        &[0, 1, 2], // γ6 = 3 (dense)
        &[0],       // γ7 = 1
        &[1, 2],    // γ8 = 2
    ];
    let mut out = vec![v1];
    for (round, blocks) in edit_blocks.iter().enumerate() {
        let mut next = out.last().unwrap().clone();
        for &b in blocks.iter() {
            next[b * BLOCK + (round % BLOCK)] ^= (round + 1) as u8;
        }
        out.push(next);
    }
    out
}

/// Stored entries touched by retrieving version `l`, with their payloads, in
/// the order the store reads them.
fn touched_entries(archive: &ByteVersionedArchive, l: usize) -> Vec<(usize, StoredPayload)> {
    let mut entries: Vec<StoredPayload> = archive.entries().iter().map(|e| e.payload).collect();
    let latest = archive.latest_full_entry().map(|e| e.payload);
    match archive.config().strategy() {
        EncodingStrategy::NonDifferential => vec![(l - 1, entries[l - 1])],
        EncodingStrategy::BasicSec | EncodingStrategy::OptimizedSec => {
            let anchor = entries[..l]
                .iter()
                .rposition(|p| matches!(p, StoredPayload::FullVersion { .. }))
                .expect("entry 0 stores a full version");
            (anchor..l).map(|i| (i, entries[i])).collect()
        }
        EncodingStrategy::ReversedSec => {
            // The latest full copy is stored after the delta entries.
            let latest_idx = entries.len();
            entries.push(latest.expect("reversed archives keep a latest full copy"));
            let mut touched = vec![(latest_idx, entries[latest_idx])];
            for idx in (l.saturating_sub(1)..latest_idx).rev() {
                touched.push((idx, entries[idx]));
            }
            touched
        }
    }
}

/// Block reads `plan_read` predicts for one entry given the live positions.
fn predicted_entry_reads(
    archive: &ByteVersionedArchive,
    live: &[usize],
    payload: StoredPayload,
) -> usize {
    let target = match payload {
        StoredPayload::FullVersion { .. } => ReadTarget::Full,
        StoredPayload::Delta { sparsity, .. } => {
            if sparsity == 0 {
                return 0; // empty deltas are reconstructed without any read
            }
            ReadTarget::Sparse { gamma: sparsity }
        }
    };
    plan_read(archive.code(), live, target)
        .expect("≤ n−k failures always leave a feasible plan")
        .io_reads
}

#[test]
fn every_version_survives_every_tolerable_failure_pattern() {
    for strategy in [
        EncodingStrategy::BasicSec,
        EncodingStrategy::OptimizedSec,
        EncodingStrategy::ReversedSec,
    ] {
        let config = ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, strategy).unwrap();
        let mut archive = ByteVersionedArchive::new(config).unwrap();
        let vs = versions();
        archive.append_all(&vs).unwrap();
        assert_eq!(archive.sparsity_profile(), &[1, 0, 2, 1, 3, 1, 2], "{strategy}");

        let mut checked_patterns = 0usize;
        for pattern in enumerate_patterns(N) {
            if pattern.failed_count() > N - K {
                continue;
            }
            checked_patterns += 1;
            let store = ByteDistributedStore::colocated(&archive);
            store.apply_pattern(&pattern);
            assert!(
                store.archive_recoverable(&archive),
                "{strategy} pattern {:?} must be survivable",
                pattern.failed_nodes()
            );
            let live = pattern.live_nodes();

            for (l, expect) in vs.iter().enumerate() {
                let l = l + 1;
                let retrieval = store.retrieve_version(&archive, l).unwrap_or_else(|e| {
                    panic!("{strategy} version {l} pattern {:?}: {e}", pattern.failed_nodes())
                });
                assert_eq!(
                    &retrieval.data,
                    expect,
                    "{strategy} version {l} pattern {:?}",
                    pattern.failed_nodes()
                );

                // Colocated placement: live positions of every entry are the
                // live node ids, so the prediction is entry-independent.
                let predicted: usize = touched_entries(&archive, l)
                    .into_iter()
                    .map(|(_, payload)| predicted_entry_reads(&archive, &live, payload))
                    .sum();
                assert_eq!(
                    retrieval.io_reads,
                    predicted,
                    "{strategy} version {l} pattern {:?}: store reads must match plan_read",
                    pattern.failed_nodes()
                );
            }
        }
        // 1 + 6 + 15 + 20 patterns of weight ≤ 3 over 6 nodes.
        assert_eq!(checked_patterns, 42, "{strategy}");
    }
}

#[test]
fn all_alive_read_counts_follow_the_paper_formulas() {
    // With every node alive and a non-systematic Cauchy code, a γ-sparse
    // delta costs exactly min(2γ, k) block reads and a full version k.
    let config =
        ArchiveConfig::new(N, K, GeneratorForm::NonSystematic, EncodingStrategy::BasicSec).unwrap();
    let mut archive = ByteVersionedArchive::new(config).unwrap();
    archive.append_all(&versions()).unwrap();
    let store = ByteDistributedStore::colocated(&archive);

    // Version 2 = full x1 (k) + delta γ=1 (2 reads).
    assert_eq!(store.retrieve_version(&archive, 2).unwrap().io_reads, K + 2);
    // Version 3 adds an empty delta: no extra reads.
    assert_eq!(store.retrieve_version(&archive, 3).unwrap().io_reads, K + 2);
    // Version 6 walks γ = [1, 0, 2, 1, 3]: 3 + 2 + 0 + 3 + 2 + 3 = 13.
    assert_eq!(store.retrieve_version(&archive, 6).unwrap().io_reads, 13);
}
